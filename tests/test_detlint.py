"""detlint: per-rule positive/negative/suppression fixtures, plus the
assertion that the shipped ``src/repro`` tree lints clean."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import detlint  # noqa: E402
from detlint import RULES, lint_source  # noqa: E402


def rules_of(code):
    return [f.rule for f in lint_source(code)]


class TestWallclock:
    def test_time_time_flagged(self):
        assert rules_of("import time\nt = time.time()\n") == ["wallclock"]

    def test_strftime_and_datetime_now_flagged(self):
        code = ("import time, datetime\n"
                "a = time.strftime('%Y')\n"
                "b = datetime.datetime.now()\n"
                "c = datetime.date.today()\n")
        assert rules_of(code) == ["wallclock"] * 3

    def test_perf_counter_allowed(self):
        code = ("import time\n"
                "t0 = time.perf_counter()\n"
                "t1 = time.monotonic()\n")
        assert rules_of(code) == []

    def test_suppressed(self):
        code = ("import time\n"
                "t = time.time()  # detlint: ignore[wallclock]\n")
        assert rules_of(code) == []


class TestWallclockSleep:
    def test_time_sleep_flagged(self):
        assert rules_of("import time\ntime.sleep(0.1)\n") == \
            ["wallclock-sleep"]

    def test_os_kill_and_signal_alarm_flagged(self):
        code = ("import os, signal\n"
                "os.kill(pid, signal.SIGKILL)\n"
                "signal.alarm(5)\n")
        assert rules_of(code) == ["wallclock-sleep"] * 2

    def test_monotonic_and_unrelated_kill_allowed(self):
        code = ("import time\n"
                "t = time.monotonic()\n"
                "proc.kill()\n")
        assert rules_of(code) == []

    def test_suppressed(self):
        code = ("import time\n"
                "time.sleep(0.1)  # detlint: ignore[wallclock-sleep]\n")
        assert rules_of(code) == []

    def test_batch_runner_carries_suppressions(self):
        # the one sanctioned home for these calls: every site in
        # repro.batch is individually marked, so the tree stays clean
        # while the raw pattern count is non-zero
        batch = REPO / "src" / "repro" / "batch"
        raw = []
        for path in detlint.iter_python_files([str(batch)]):
            linter = detlint._Linter(str(path))
            linter.visit(detlint.ast.parse(path.read_text()))
            raw.extend(f for f in linter.findings
                       if f.rule == "wallclock-sleep")
        assert raw, "expected wallclock-sleep sites inside repro.batch"
        for path in detlint.iter_python_files([str(batch)]):
            assert [f for f in detlint.lint_file(path)
                    if f.rule == "wallclock-sleep"] == []


class TestSocketIo:
    def test_server_and_client_constructors_flagged(self):
        code = ("import asyncio, socket\n"
                "srv = asyncio.start_server(cb, '::1', 0)\n"
                "conn = asyncio.open_connection('::1', 1)\n"
                "raw = socket.socket()\n"
                "out = socket.create_connection(('::1', 1))\n")
        assert rules_of(code) == ["socket-io"] * 4

    def test_unrelated_attribute_allowed(self):
        # a .socket attribute or local name is not the socket module
        code = ("srv.socket.close()\n"
                "sockets = server.sockets\n")
        assert rules_of(code) == []

    def test_suppressed(self):
        code = ("import asyncio\n"
                "srv = asyncio.start_server(cb)  "
                "# detlint: ignore[socket-io]\n")
        assert rules_of(code) == []

    def test_serve_layer_carries_suppressions(self):
        # the one sanctioned home for real sockets: every site in
        # repro.serve is individually marked
        serve = REPO / "src" / "repro" / "serve"
        raw = []
        for path in detlint.iter_python_files([str(serve)]):
            linter = detlint._Linter(str(path))
            linter.visit(detlint.ast.parse(path.read_text()))
            raw.extend(f for f in linter.findings if f.rule == "socket-io")
        assert raw, "expected socket-io sites inside repro.serve"
        for path in detlint.iter_python_files([str(serve)]):
            assert [f for f in detlint.lint_file(path)
                    if f.rule == "socket-io"] == []

    def test_serve_layer_wallclock_is_all_suppressed(self):
        # deadlines/backoff make repro.serve the wallclock escape
        # hatch; every read is marked, so the tree lints clean while
        # the raw pattern count is non-zero
        serve = REPO / "src" / "repro" / "serve"
        raw = []
        for path in detlint.iter_python_files([str(serve)]):
            linter = detlint._Linter(str(path))
            linter.visit(detlint.ast.parse(path.read_text()))
            raw.extend(f for f in linter.findings if f.rule == "wallclock")
        assert raw, "expected wallclock sites inside repro.serve"
        for path in detlint.iter_python_files([str(serve)]):
            assert [f for f in detlint.lint_file(path)
                    if f.rule == "wallclock"] == []


class TestUnseededRandom:
    def test_global_functions_flagged(self):
        code = ("import random\n"
                "a = random.random()\n"
                "b = random.randint(0, 9)\n"
                "random.shuffle(x)\n")
        assert rules_of(code) == ["unseeded-random"] * 3

    def test_unseeded_constructor_flagged(self):
        assert rules_of("import random\nr = random.Random()\n") == \
            ["unseeded-random"]

    def test_seeded_constructor_allowed(self):
        code = ("import random\n"
                "r = random.Random(42)\n"
                "s = random.Random(seed)\n")
        assert rules_of(code) == []

    def test_numpy_global_flagged_seeded_generator_allowed(self):
        code = ("import numpy as np\n"
                "bad = np.random.rand(3)\n"
                "worse = np.random.default_rng()\n"
                "good = np.random.default_rng(1234)\n")
        assert rules_of(code) == ["unseeded-random"] * 2

    def test_suppressed(self):
        code = ("import random\n"
                "r = random.random()  # detlint: ignore[unseeded-random]\n")
        assert rules_of(code) == []


class TestSetIteration:
    def test_for_over_set_display_flagged(self):
        assert rules_of("for x in {1, 2, 3}:\n    print(x)\n") == \
            ["set-iteration"]

    def test_for_over_set_call_flagged(self):
        assert rules_of("for x in set(items):\n    print(x)\n") == \
            ["set-iteration"]

    def test_comprehension_over_frozenset_flagged(self):
        assert rules_of("out = [x for x in frozenset(items)]\n") == \
            ["set-iteration"]

    def test_sorted_set_allowed(self):
        code = ("for x in sorted({1, 2, 3}):\n    print(x)\n"
                "out = [x for x in sorted(set(items))]\n")
        assert rules_of(code) == []

    def test_membership_and_ops_allowed(self):
        code = ("s = {1, 2}\n"
                "if 1 in s:\n    pass\n"
                "s.add(3)\n")
        assert rules_of(code) == []

    def test_suppressed(self):
        code = "for x in set(items):  # detlint: ignore[set-iteration]\n" \
               "    print(x)\n"
        assert rules_of(code) == []


class TestFloatCounter:
    def test_float_constant_flagged(self):
        assert rules_of("counters.add('x', 1.5)\n") == ["float-counter"]

    def test_true_division_flagged(self):
        assert rules_of("self.counters.add('x', n / 2)\n") == \
            ["float-counter"]

    def test_float_call_and_keyword_flagged(self):
        code = ("counters.add('x', float(n))\n"
                "counters.add('y', amount=2.0)\n")
        assert rules_of(code) == ["float-counter"] * 2

    def test_add_many_literal_pair_flagged(self):
        assert rules_of("c.add_many([('a', 1), ('b', 0.5)])\n") == \
            ["float-counter"]

    def test_int_amounts_allowed(self):
        code = ("counters.add('x')\n"
                "counters.add('x', 4)\n"
                "counters.add('x', n // 2)\n"
                "c.add_many([('a', 1), ('b', 2)])\n")
        assert rules_of(code) == []

    def test_set_add_not_confused(self):
        assert rules_of("seen.add(item)\nseen.add(1.5)\n") == []

    def test_suppressed(self):
        code = "counters.add('x', 0.5)  # detlint: ignore[float-counter]\n"
        assert rules_of(code) == []


class TestMutableClassAttr:
    def test_list_dict_set_literals_flagged(self):
        code = ("class C:\n"
                "    items = []\n"
                "    table = {}\n"
                "    seen = set()\n")
        assert rules_of(code) == ["mutable-class-attr"] * 3

    def test_upper_case_constants_allowed(self):
        code = ("class C:\n"
                "    WALK_LEVELS = {4096: 4}\n"
                "    _HIT_NAMES = ['a', 'b']\n")
        assert rules_of(code) == []

    def test_dataclass_exempt(self):
        code = ("from dataclasses import dataclass, field\n"
                "@dataclass\n"
                "class C:\n"
                "    items: list = field(default_factory=list)\n"
                "    meta = {}\n")
        assert rules_of(code) == []

    def test_immutable_defaults_allowed(self):
        code = ("class C:\n"
                "    name = 'x'\n"
                "    size = 0\n"
                "    pair = (1, 2)\n")
        assert rules_of(code) == []

    def test_instance_assignment_allowed(self):
        code = ("class C:\n"
                "    def __init__(self):\n"
                "        self.items = []\n")
        assert rules_of(code) == []

    def test_suppressed(self):
        code = ("class C:\n"
                "    items = []  # detlint: ignore[mutable-class-attr]\n")
        assert rules_of(code) == []


class TestInternStr:
    def test_variable_arg_flagged(self):
        assert rules_of("from sys import intern\nk = intern(name)\n") == \
            ["intern-str"]
        assert rules_of("import sys\nk = sys.intern(name)\n") == \
            ["intern-str"]

    def test_provably_str_allowed(self):
        code = ("import sys\n"
                "a = sys.intern('lit')\n"
                "b = sys.intern(f'x{i}')\n"
                "c = sys.intern(str(name))\n")
        assert rules_of(code) == []

    def test_suppressed(self):
        code = ("import sys\n"
                "k = sys.intern(name)  # detlint: ignore[intern-str]\n")
        assert rules_of(code) == []


class TestRefcountProbe:
    def test_dotted_call_flagged(self):
        assert rules_of("import sys\nif sys.getrefcount(ev) == 2:\n"
                        "    pool.append(ev)\n") == ["refcount-probe"]

    def test_bare_call_and_import_flagged(self):
        # the import alone is a finding, so smuggling the name in
        # costs one hit and the call a second
        code = ("from sys import getrefcount\n"
                "n = getrefcount(obj)\n")
        assert rules_of(code) == ["refcount-probe", "refcount-probe"]

    def test_unrelated_sys_use_allowed(self):
        code = ("import sys\n"
                "from sys import maxsize\n"
                "sys.exit(0)\n")
        assert rules_of(code) == []

    def test_suppressed(self):
        code = ("import sys\n"
                "n = sys.getrefcount(x)  # detlint: ignore[refcount-probe]\n")
        assert rules_of(code) == []


class TestSuppressionForms:
    def test_bare_ignore_silences_everything(self):
        code = "import time\nt = time.time()  # detlint: ignore\n"
        assert rules_of(code) == []

    def test_listed_ignore_only_silences_named_rules(self):
        code = ("import time\n"
                "t = time.time()  # detlint: ignore[set-iteration]\n")
        assert rules_of(code) == ["wallclock"]

    def test_multiple_rules_listed(self):
        code = ("counters.add('x', time.time())"
                "  # detlint: ignore[wallclock,float-counter]\n")
        assert rules_of(code) == []


class TestHarness:
    def test_every_rule_has_catalogue_entry(self):
        samples = {
            "wallclock": "t = time.time()\n",
            "wallclock-sleep": "time.sleep(0.1)\n",
            "unseeded-random": "r = random.random()\n",
            "set-iteration": "for x in set(y):\n    pass\n",
            "float-counter": "c.add('x', 0.5)\n",
            "socket-io": "s = socket.socket()\n",
            "mutable-class-attr": "class C:\n    xs = []\n",
            "intern-str": "k = sys.intern(v)\n",
            "refcount-probe": "n = sys.getrefcount(v)\n",
        }
        assert set(samples) == set(RULES)
        for rule, code in samples.items():
            assert rules_of(code) == [rule]

    def test_finding_render_format(self):
        f = lint_source("t = time.time()\n", path="pkg/mod.py")[0]
        assert f.render() == \
            f"pkg/mod.py:1:4: wallclock {f.message}"

    def test_findings_sorted_by_line(self):
        code = ("class C:\n"
                "    xs = []\n"
                "t = time.time()\n")
        findings = lint_source(code)
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_cli_list_rules(self):
        out = subprocess.run(
            [sys.executable, str(REPO / "tools" / "detlint.py"),
             "--list-rules"],
            capture_output=True, text=True, cwd=REPO)
        assert out.returncode == 0
        for rule in RULES:
            assert rule in out.stdout

    def test_cli_exit_codes(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        r_dirty = subprocess.run(
            [sys.executable, str(REPO / "tools" / "detlint.py"), str(dirty)],
            capture_output=True, text=True)
        r_clean = subprocess.run(
            [sys.executable, str(REPO / "tools" / "detlint.py"), str(clean)],
            capture_output=True, text=True)
        assert r_dirty.returncode == 1
        assert "wallclock" in r_dirty.stdout
        assert r_clean.returncode == 0


class TestTreeIsClean:
    def test_src_repro_lints_clean(self):
        findings = []
        for path in detlint.iter_python_files([str(REPO / "src" / "repro")]):
            findings.extend(detlint.lint_file(path))
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_detlint_lints_itself(self):
        findings = detlint.lint_file(REPO / "tools" / "detlint.py")
        assert findings == []
