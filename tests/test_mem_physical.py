"""Unit tests for physical memory frame pools (repro.mem.physical)."""

import pytest

from repro.mem.physical import (
    FRAMES_PER_HUGEPAGE,
    PAGE_2M,
    PAGE_4K,
    OutOfMemoryError,
    PhysicalMemory,
    align_down,
    align_up,
    is_aligned,
)

MB = 1024 * 1024


class TestAlignmentHelpers:
    def test_is_aligned(self):
        assert is_aligned(8192, PAGE_4K)
        assert not is_aligned(8193, PAGE_4K)

    def test_align_up(self):
        assert align_up(1, PAGE_4K) == PAGE_4K
        assert align_up(PAGE_4K, PAGE_4K) == PAGE_4K
        assert align_up(PAGE_4K + 1, PAGE_4K) == 2 * PAGE_4K

    def test_align_down(self):
        assert align_down(PAGE_4K - 1, PAGE_4K) == 0
        assert align_down(PAGE_4K, PAGE_4K) == PAGE_4K


class TestConstruction:
    def test_basic(self):
        pm = PhysicalMemory(64 * MB, hugepages=4)
        assert pm.total_hugepages == 4
        assert pm.free_hugepages == 4
        assert pm.free_small_frames == (64 * MB - 4 * PAGE_2M) // PAGE_4K

    def test_unaligned_total_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(64 * MB + 1)

    def test_hugepool_must_fit(self):
        with pytest.raises(ValueError):
            PhysicalMemory(8 * MB, hugepages=4)

    def test_fragmentation_bounds(self):
        with pytest.raises(ValueError):
            PhysicalMemory(64 * MB, fragmentation=1.5)


class TestSmallFrames:
    def test_alloc_free_roundtrip(self):
        pm = PhysicalMemory(16 * MB)
        before = pm.free_small_frames
        f = pm.alloc_frame()
        assert pm.free_small_frames == before - 1
        pm.free_frame(f)
        assert pm.free_small_frames == before

    def test_frames_are_unique(self):
        pm = PhysicalMemory(16 * MB)
        frames = {pm.alloc_frame() for _ in range(100)}
        assert len(frames) == 100

    def test_frames_are_page_aligned(self):
        pm = PhysicalMemory(16 * MB)
        for _ in range(50):
            assert pm.alloc_frame() % PAGE_4K == 0

    def test_exhaustion(self):
        pm = PhysicalMemory(2 * MB)
        for _ in range(pm.free_small_frames):
            pm.alloc_frame()
        with pytest.raises(OutOfMemoryError):
            pm.alloc_frame()

    def test_fragmented_pool_is_scattered(self):
        pm = PhysicalMemory(64 * MB, fragmentation=1.0, seed=1)
        frames = [pm.alloc_frame() for _ in range(64)]
        adjacent = sum(
            1 for a, b in zip(frames, frames[1:]) if b == a + PAGE_4K
        )
        assert adjacent < 16  # mostly non-contiguous

    def test_unfragmented_pool_is_sequential(self):
        pm = PhysicalMemory(64 * MB, fragmentation=0.0)
        frames = [pm.alloc_frame() for _ in range(64)]
        adjacent = sum(
            1 for a, b in zip(frames, frames[1:]) if b == a + PAGE_4K
        )
        assert adjacent == 63

    def test_free_rejects_hugepool_address(self):
        pm = PhysicalMemory(64 * MB, hugepages=4)
        huge = pm.alloc_hugepage()
        with pytest.raises(ValueError):
            pm.free_frame(huge)

    def test_deterministic_given_seed(self):
        a = PhysicalMemory(64 * MB, seed=7)
        b = PhysicalMemory(64 * MB, seed=7)
        assert [a.alloc_frame() for _ in range(32)] == [
            b.alloc_frame() for _ in range(32)
        ]


class TestHugepages:
    def test_alloc_free_roundtrip(self):
        pm = PhysicalMemory(64 * MB, hugepages=4)
        h = pm.alloc_hugepage()
        assert h % PAGE_2M == 0
        assert pm.contains_hugepage(h)
        pm.free_hugepage(h)
        assert pm.free_hugepages == 4

    def test_exhaustion(self):
        pm = PhysicalMemory(64 * MB, hugepages=2)
        pm.alloc_hugepage()
        pm.alloc_hugepage()
        with pytest.raises(OutOfMemoryError):
            pm.alloc_hugepage()

    def test_free_rejects_small_address(self):
        pm = PhysicalMemory(64 * MB, hugepages=2)
        with pytest.raises(ValueError):
            pm.free_hugepage(0)

    def test_hugepages_physically_contiguous_inside(self):
        # a hugepage is one frame: its 512 4K-sub-frames are contiguous by
        # construction; verify the constant used elsewhere
        assert FRAMES_PER_HUGEPAGE == 512
