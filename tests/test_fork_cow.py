"""Tests for fork/Copy-on-Write — the reason for the fork reserve (§3.1)."""

import pytest

from repro.alloc import HugepageLibraryAllocator, HugepageLibraryConfig
from repro.core import preload_hugepage_library
from repro.engine import SimKernel
from repro.ib.verbs import ProtectionDomain
from repro.mem import (
    AddressSpace,
    HugePagePoolExhausted,
    HugeTLBfs,
    MappingError,
    PAGE_2M,
    PAGE_4K,
    PhysicalMemory,
)
from repro.systems import Machine, presets

MB = 1024 * 1024


@pytest.fixture
def pm():
    return PhysicalMemory(256 * MB, hugepages=8)


@pytest.fixture
def aspace(pm):
    return AddressSpace(pm, HugeTLBfs(pm))


class TestAddressSpaceFork:
    def test_child_sees_same_layout(self, aspace):
        vma = aspace.mmap(4 * PAGE_4K)
        child = aspace.fork()
        assert child.find_vma(vma.start).length == vma.length
        # identical translation before any write
        assert child.translate(vma.start) == aspace.translate(vma.start)

    def test_fork_allocates_nothing(self, aspace, pm):
        aspace.mmap(16 * PAGE_4K)
        aspace.mmap(2 * PAGE_2M, page_size=PAGE_2M)
        small_before = pm.free_small_frames
        huge_before = pm.free_hugepages
        aspace.fork()
        assert pm.free_small_frames == small_before
        assert pm.free_hugepages == huge_before

    def test_write_fault_copies_4k(self, aspace, pm):
        vma = aspace.mmap(PAGE_4K)
        child = aspace.fork()
        before = pm.free_small_frames
        assert child.write_fault(vma.start)
        assert pm.free_small_frames == before - 1
        # diverged: different frames now
        assert child.translate(vma.start)[0] != aspace.translate(vma.start)[0]
        # a second write is not a fault
        assert not child.write_fault(vma.start)

    def test_write_fault_copies_hugepage_from_pool(self, aspace, pm):
        vma = aspace.mmap(PAGE_2M, page_size=PAGE_2M)
        child = aspace.fork()
        before = pm.free_hugepages
        assert child.write_fault(vma.start)
        assert pm.free_hugepages == before - 1

    def test_cow_fault_fails_on_empty_pool(self, aspace, pm):
        """The §3.1 hazard: no reserve -> the child's first write dies."""
        vma = aspace.mmap(pm.free_hugepages * PAGE_2M, page_size=PAGE_2M)
        child = aspace.fork()  # pool now empty, all pages shared
        with pytest.raises(HugePagePoolExhausted):
            child.write_fault(vma.start)

    def test_library_reserve_saves_the_fork(self, pm):
        """With the mapping layer's fork reserve, the same scenario
        leaves pages for the CoW fault."""
        aspace = AddressSpace(pm, HugeTLBfs(pm))
        lib = HugepageLibraryAllocator(
            aspace, config=HugepageLibraryConfig(fork_reserve_pages=2)
        )
        # a pool-sized request falls back to base pages (reserve kept)
        spill = lib.malloc(8 * PAGE_2M)
        assert not lib.is_hugepage_backed(spill)
        buf = lib.malloc(6 * PAGE_2M)  # reserve of 2 survives
        child = aspace.fork()
        assert child.write_fault(buf)  # CoW succeeds from the reserve
        assert child.write_fault(buf + PAGE_2M)

    def test_shared_frames_not_double_freed(self, aspace, pm):
        vma = aspace.mmap(4 * PAGE_4K)
        small_baseline = pm.free_small_frames
        child = aspace.fork()
        child.munmap(vma.start)  # child drops its refs
        assert pm.free_small_frames == small_baseline  # parent still owns
        paddr, _ = aspace.translate(vma.start)  # parent still mapped
        aspace.munmap(vma.start)
        assert pm.free_small_frames == small_baseline + 4

    def test_fork_with_pinned_pages_refused(self, aspace):
        """The classic InfiniBand fork hazard is an explicit error."""
        machine = Machine(SimKernel(), presets.opteron_infinihost_pcie())
        proc = machine.new_process()
        vma = proc.aspace.mmap(PAGE_4K)
        machine.reg_engine.register(proc.aspace, ProtectionDomain.fresh(),
                                    vma.start, PAGE_4K)
        with pytest.raises(MappingError, match="pinned"):
            proc.aspace.fork()

    def test_parent_write_also_faults(self, aspace):
        vma = aspace.mmap(PAGE_4K)
        child = aspace.fork()
        assert aspace.write_fault(vma.start)  # parent copies too
        # the child's view keeps the original frame
        assert not child.page_table.lookup(vma.start).cow or True


class TestOSProcessFork:
    def test_fork_produces_working_child(self):
        machine = Machine(SimKernel(), presets.opteron_infinihost_pcie())
        parent = machine.new_process("parent")
        handle = preload_hugepage_library(parent)
        buf = parent.malloc(2 * MB)
        child = parent.fork()
        assert child in machine.processes
        assert child.aspace is not parent.aspace
        # child can read the inherited buffer (same translation)
        assert child.aspace.translate(buf) == parent.aspace.translate(buf)
        # child can run its own allocations
        p = child.malloc(64 * 1024)
        assert child.aspace.translate(p)

    def test_child_counters_fresh(self):
        machine = Machine(SimKernel(), presets.opteron_infinihost_pcie())
        parent = machine.new_process()
        buf = parent.malloc(1 * MB)
        parent.engine.stream(buf, 1 * MB)
        child = parent.fork()
        assert child.counters.get("tlb.4k.miss") == 0
