"""Unit tests for the DES kernel (repro.engine.core)."""

import pytest

from repro.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimError,
    SimKernel,
)


@pytest.fixture
def kernel():
    return SimKernel()


class TestClockAndTimeout:
    def test_time_starts_at_zero(self, kernel):
        assert kernel.now == 0

    def test_timeout_advances_clock(self, kernel):
        def proc():
            yield kernel.timeout(42)

        kernel.process(proc())
        kernel.run()
        assert kernel.now == 42

    def test_timeout_value_passthrough(self, kernel):
        seen = []

        def proc():
            v = yield kernel.timeout(5, value="hello")
            seen.append(v)

        kernel.process(proc())
        kernel.run()
        assert seen == ["hello"]

    def test_negative_timeout_rejected(self, kernel):
        with pytest.raises(SimError):
            kernel.timeout(-1)

    def test_zero_timeout_allowed(self, kernel):
        def proc():
            yield kernel.timeout(0)
            return kernel.now

        p = kernel.process(proc())
        kernel.run()
        assert p.value == 0

    def test_run_until_stops_clock(self, kernel):
        def proc():
            yield kernel.timeout(100)

        kernel.process(proc())
        kernel.run(until=50)
        assert kernel.now == 50

    def test_run_until_in_past_rejected(self, kernel):
        def proc():
            yield kernel.timeout(100)

        kernel.process(proc())
        kernel.run()
        with pytest.raises(SimError):
            kernel.run(until=50)

    def test_sequential_timeouts_accumulate(self, kernel):
        def proc():
            yield kernel.timeout(10)
            yield kernel.timeout(20)
            yield kernel.timeout(30)
            return kernel.now

        p = kernel.process(proc())
        kernel.run()
        assert p.value == 60


class TestEvents:
    def test_manual_succeed(self, kernel):
        ev = kernel.event()
        results = []

        def waiter():
            v = yield ev
            results.append((kernel.now, v))

        def trigger():
            yield kernel.timeout(7)
            ev.succeed("done")

        kernel.process(waiter())
        kernel.process(trigger())
        kernel.run()
        assert results == [(7, "done")]

    def test_double_trigger_rejected(self, kernel):
        ev = kernel.event()
        ev.succeed(1)
        with pytest.raises(SimError):
            ev.succeed(2)

    def test_fail_throws_into_waiter(self, kernel):
        ev = kernel.event()
        caught = []

        def waiter():
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        def trigger():
            yield kernel.timeout(1)
            ev.fail(RuntimeError("boom"))

        kernel.process(waiter())
        kernel.process(trigger())
        kernel.run()
        assert caught == ["boom"]

    def test_fail_requires_exception(self, kernel):
        ev = kernel.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_yield_processed_event_resumes_immediately(self, kernel):
        ev = kernel.event()
        ev.succeed("early")
        results = []

        def waiter():
            yield kernel.timeout(10)  # event fires long before this
            v = yield ev
            results.append((kernel.now, v))

        kernel.process(waiter())
        kernel.run()
        assert results == [(10, "early")]

    def test_yield_non_event_is_error(self, kernel):
        def proc():
            yield 42

        kernel.process(proc())
        with pytest.raises(SimError):
            kernel.run()


class TestProcesses:
    def test_return_value(self, kernel):
        def proc():
            yield kernel.timeout(1)
            return "result"

        p = kernel.process(proc())
        kernel.run()
        assert p.value == "result"
        assert not p.is_alive

    def test_waiting_on_process(self, kernel):
        def child():
            yield kernel.timeout(30)
            return "child-result"

        def parent():
            v = yield kernel.process(child())
            return (kernel.now, v)

        p = kernel.process(parent())
        kernel.run()
        assert p.value == (30, "child-result")

    def test_unhandled_exception_propagates_from_run(self, kernel):
        def proc():
            yield kernel.timeout(1)
            raise ValueError("unhandled")

        kernel.process(proc())
        with pytest.raises(ValueError, match="unhandled"):
            kernel.run()

    def test_exception_delivered_to_waiter_instead(self, kernel):
        def child():
            yield kernel.timeout(1)
            raise ValueError("caught by parent")

        def parent():
            try:
                yield kernel.process(child())
            except ValueError:
                return "handled"

        p = kernel.process(parent())
        kernel.run()
        assert p.value == "handled"

    def test_interrupt(self, kernel):
        log = []

        def sleeper():
            try:
                yield kernel.timeout(1000)
            except Interrupt as i:
                log.append((kernel.now, i.cause))

        def interrupter(target):
            yield kernel.timeout(5)
            target.interrupt("wake up")

        t = kernel.process(sleeper())
        kernel.process(interrupter(t))
        kernel.run()
        assert log == [(5, "wake up")]

    def test_interrupt_finished_process_rejected(self, kernel):
        def quick():
            yield kernel.timeout(1)

        p = kernel.process(quick())
        kernel.run()
        with pytest.raises(SimError):
            p.interrupt()

    def test_non_generator_rejected(self, kernel):
        with pytest.raises(SimError):
            kernel.process(lambda: None)


class TestCombinators:
    def test_all_of_waits_for_slowest(self, kernel):
        def proc():
            vals = yield kernel.all_of(
                [kernel.timeout(10, "a"), kernel.timeout(30, "b"), kernel.timeout(20, "c")]
            )
            return (kernel.now, vals)

        p = kernel.process(proc())
        kernel.run()
        assert p.value == (30, ["a", "b", "c"])

    def test_all_of_empty_fires_immediately(self, kernel):
        def proc():
            vals = yield kernel.all_of([])
            return (kernel.now, vals)

        p = kernel.process(proc())
        kernel.run()
        assert p.value == (0, [])

    def test_any_of_returns_first(self, kernel):
        def proc():
            idx, val = yield kernel.any_of(
                [kernel.timeout(30, "slow"), kernel.timeout(5, "fast")]
            )
            return (kernel.now, idx, val)

        p = kernel.process(proc())
        kernel.run()
        assert p.value == (5, 1, "fast")

    def test_any_of_empty_rejected(self, kernel):
        with pytest.raises(SimError):
            kernel.any_of([])


class TestDeterminism:
    def test_fifo_order_at_same_instant(self, kernel):
        order = []

        def make(name):
            def proc():
                yield kernel.timeout(10)
                order.append(name)

            return proc

        for name in "abcde":
            kernel.process(make(name)())
        kernel.run()
        assert order == list("abcde")

    def test_two_runs_identical(self):
        def scenario():
            k = SimKernel()
            trace = []

            def worker(name, delay):
                yield k.timeout(delay)
                trace.append((k.now, name))
                yield k.timeout(delay)
                trace.append((k.now, name))

            for i in range(10):
                k.process(worker(f"w{i}", 3 + i % 4))
            k.run()
            return trace

        assert scenario() == scenario()
