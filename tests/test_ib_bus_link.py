"""Unit tests for the bus and link models."""

import pytest

from repro.engine import SimKernel
from repro.ib.bus import BusConfig, BusModel, gx_bus, pci_express_x8, pci_x_133
from repro.ib.link import IBLink, LinkConfig


@pytest.fixture
def pcie():
    return BusModel(SimKernel(), pci_express_x8())


class TestBusConfig:
    def test_presets_sane(self):
        assert pci_express_x8().duplex
        assert not pci_x_133().duplex
        assert gx_bus().bandwidth_mb_s > pci_x_133().bandwidth_mb_s

    def test_validation(self):
        with pytest.raises(ValueError):
            BusConfig(name="bad", bandwidth_mb_s=0)
        with pytest.raises(ValueError):
            BusConfig(name="bad", bandwidth_mb_s=100, burst_bytes=100)


class TestBursts:
    def test_aligned_single_burst(self, pcie):
        assert pcie.bursts_for(0, 128) == 1
        assert pcie.bursts_for(0, 129) == 2

    def test_offset_adds_burst(self, pcie):
        assert pcie.bursts_for(64, 128) == 2  # straddles a boundary

    def test_invalid_size(self, pcie):
        with pytest.raises(ValueError):
            pcie.bursts_for(0, 0)


class TestOffsetProfile:
    """The Fig 4 behaviour (§4: 'optimized for certain offsets, e.g. at
    offset 64')."""

    def test_sweet_spot_at_64(self, pcie):
        assert pcie.offset_adjust_ns(64) < pcie.offset_adjust_ns(0)

    def test_sub_word_misalignment_costs(self, pcie):
        assert pcie.offset_adjust_ns(1) > pcie.offset_adjust_ns(0)
        assert pcie.offset_adjust_ns(7) > pcie.offset_adjust_ns(8)

    def test_profile_periodic_in_128(self, pcie):
        assert pcie.offset_adjust_ns(64) == pcie.offset_adjust_ns(192)

    def test_dma_cost_never_negative(self, pcie):
        for off in range(0, 256):
            assert pcie.dma_read_ns(off, 8) >= 0.0


class TestDMACosts:
    def test_large_read_approaches_bandwidth(self, pcie):
        nbytes = 8 * 1024 * 1024
        ns = pcie.dma_read_ns(0, nbytes)
        ideal = pcie.stream_ns(nbytes)
        assert ns / ideal < 1.25

    def test_small_read_dominated_by_setup(self, pcie):
        ns = pcie.dma_read_ns(0, 8)
        assert ns > 10 * pcie.stream_ns(8)

    def test_write_cheaper_than_read(self, pcie):
        assert pcie.dma_write_ns(0, 4096) < pcie.dma_read_ns(0, 4096)

    def test_wqe_fetch_grows_with_sges(self, pcie):
        assert pcie.wqe_fetch_ns(128) > pcie.wqe_fetch_ns(1)


class TestDuplexChannels:
    def test_pcie_independent_channels(self):
        bus = BusModel(SimKernel(), pci_express_x8())
        assert bus.read_channel is not bus.write_channel

    def test_pcix_shared_channel(self):
        """Half-duplex: reads and writes contend — the mechanism that
        exposes ATT stalls on the Xeon."""
        bus = BusModel(SimKernel(), pci_x_133())
        assert bus.read_channel is bus.write_channel


class TestLink:
    def test_packets(self):
        link = IBLink(LinkConfig(mtu_bytes=2048))
        assert link.packets_for(0) == 1  # an ack is still a packet
        assert link.packets_for(2048) == 1
        assert link.packets_for(2049) == 2

    def test_transfer_includes_latency(self):
        link = IBLink(LinkConfig())
        assert link.transfer_ns(1) > link.serialization_ns(1)

    def test_bandwidth_asymptote(self):
        link = IBLink(LinkConfig(payload_mb_s=940.0))
        nbytes = 16 * 1024 * 1024
        ns = link.transfer_ns(nbytes)
        achieved = nbytes / (ns / 1e9) / 1e6
        assert achieved > 0.9 * 940.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkConfig(payload_mb_s=0)
        with pytest.raises(ValueError):
            IBLink(LinkConfig()).packets_for(-1)

    def test_ack_is_cheap(self):
        link = IBLink(LinkConfig())
        assert link.ack_ns() < link.transfer_ns(2048)
