"""Tests for the crash-tolerant batch runner (``repro batch``).

Unit layers (spec parsing, journal replay, chaos decisions, the memo
cache) are tested in-process; the supervision/recovery semantics are
tested end-to-end through real worker processes — including the
acceptance property that a chaos-interrupted batch produces results
byte-identical to an uninterrupted run of the same specfile.
"""

import io
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.batch import (
    BatchError,
    BatchSupervisor,
    ChaosPlan,
    JobSpec,
    JournalError,
    MemoCache,
    SpecError,
    fold_jobs,
    job_key,
    load_specfile,
    parse_chaos,
    read_journal,
)
from repro.batch import journal as journal_mod
from repro.batch import worker
from repro.cli import main
from repro.util import atomic_write

REPO = Path(__file__).resolve().parent.parent


# --- repro.util.atomic_write ----------------------------------------------


class TestAtomicWrite:
    def test_writes_bytes_and_text(self, tmp_path):
        p = tmp_path / "a.bin"
        atomic_write(str(p), b"\x00\x01")
        assert p.read_bytes() == b"\x00\x01"
        atomic_write(str(p), "text\n")
        assert p.read_text() == "text\n"

    def test_creates_parent_dirs(self, tmp_path):
        p = tmp_path / "deep" / "er" / "f.txt"
        atomic_write(str(p), "x")
        assert p.read_text() == "x"

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write(str(tmp_path / "f.txt"), "x", prefix=".tmp-")
        assert [p.name for p in tmp_path.iterdir()] == ["f.txt"]

    def test_replaces_existing_content_atomically(self, tmp_path):
        p = tmp_path / "f.txt"
        p.write_text("old")
        atomic_write(str(p), "new")
        assert p.read_text() == "new"


# --- specfile parsing ------------------------------------------------------


class TestSpecfile:
    def _load(self, tmp_path, doc):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        return load_specfile(str(path))

    def test_list_form(self, tmp_path):
        specs = self._load(tmp_path, [
            {"command": "fig4"},
            {"id": "f7", "command": "faults",
             "args": ["--fault-seed", "7"], "timeout": 30},
        ])
        assert [s.id for s in specs] == ["job-000-fig4", "f7"]
        assert specs[1].argv == ["faults", "--fault-seed", "7"]
        assert specs[1].timeout == 30.0

    def test_jobs_object_form(self, tmp_path):
        specs = self._load(tmp_path, {"jobs": [{"command": "fig4"}]})
        assert len(specs) == 1

    @pytest.mark.parametrize("doc,needle", [
        ([], "no jobs"),
        ([{"command": "no-such"}], "unknown command"),
        ([{"command": "batch"}], "meta command"),
        ([{"command": "resume"}], "meta command"),
        ([{"command": "fig4", "args": "oops"}], "list of strings"),
        ([{"command": "fig4", "args": [1]}], "list of strings"),
        ([{"command": "fig4", "timeout": -1}], "positive number"),
        ([{"command": "fig4", "id": "a/b"}], "plain name"),
        ([{"command": "fig4", "bogus": 1}], "unknown key"),
        ([{"command": "fig4", "id": "x"},
          {"command": "fig5", "id": "x"}], "duplicate job id"),
        ([42], "expected an object"),
        ({"jobs": [], "extra": 1}, "exactly one key"),
        ("not-a-list", "JSON list"),
    ])
    def test_invalid_specs_raise(self, tmp_path, doc, needle):
        with pytest.raises(SpecError, match=needle):
            self._load(tmp_path, doc)

    def test_unreadable_and_malformed_files(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            load_specfile(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(SpecError, match="not valid JSON"):
            load_specfile(str(bad))

    def test_job_key_covers_config_not_labels(self):
        a = JobSpec(id="a", command="fig4", args=["--x", "1"])
        b = JobSpec(id="b", command="fig4", args=["--x", "1"], timeout=9.0)
        c = JobSpec(id="c", command="fig4", args=["--x", "2"])
        assert job_key(a) == job_key(b)
        assert job_key(a) != job_key(c)
        assert len(job_key(a)) == 64


# --- the write-ahead journal ----------------------------------------------


class TestJournal:
    def test_append_read_roundtrip(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with journal_mod.Journal(str(path)) as j:
            j.append({"ev": "batch-start"})
            j.append({"ev": "queued", "job": "a"})
        records, torn = read_journal(str(path))
        assert not torn
        assert [r["ev"] for r in records] == ["batch-start", "queued"]

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"ev":"queued","job":"a"}\n{"ev":"don')
        records, torn = read_journal(str(path))
        assert torn
        assert [r["ev"] for r in records] == ["queued"]

    def test_complete_tail_without_newline_is_kept(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"ev":"queued","job":"a"}\n{"ev":"done","job":"a"}')
        records, torn = read_journal(str(path))
        assert not torn
        assert [r["ev"] for r in records] == ["queued", "done"]

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"ev":"queued"}\ngarbage\n{"ev":"done"}\n')
        with pytest.raises(JournalError, match="line 2"):
            read_journal(str(path))

    def test_fold_jobs_transitions(self):
        records = [
            {"ev": "queued", "job": "a", "key": "k1", "command": "fig4"},
            {"ev": "queued", "job": "b", "key": "k2", "command": "fig5"},
            {"ev": "queued", "job": "c", "key": "k3", "command": "tlb"},
            {"ev": "running", "job": "a", "attempt": 0},
            {"ev": "killed", "job": "a", "attempt": 0},
            {"ev": "running", "job": "a", "attempt": 1},
            {"ev": "done", "job": "a", "key": "k1", "result": "r.out"},
            {"ev": "running", "job": "b", "attempt": 0},
            {"ev": "failed", "job": "b", "attempt": 0, "exit": 2},
            {"ev": "running", "job": "c", "attempt": 0},
        ]
        folded = fold_jobs(records)
        assert folded["a"]["status"] == "done"
        assert folded["a"]["result"] == "r.out"
        assert folded["a"]["attempts"] == 2
        assert folded["b"]["status"] == "failed"
        assert folded["c"]["status"] == "running"

    def test_recover_missing_journal_is_empty(self, tmp_path):
        states, torn = journal_mod.recover(str(tmp_path / "absent.jsonl"))
        assert states == {} and torn is False

    def test_compact_rewrites_header_plus_keep(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text("x" * 100)
        journal_mod.compact(str(path), [{"ev": "done", "job": "a"}],
                            header={"ev": "batch-start"})
        records, torn = read_journal(str(path))
        assert not torn
        assert [r["ev"] for r in records] == ["batch-start", "done"]


class TestCompactingJournal:
    @staticmethod
    def _keep_latest(records):
        # toy fold: keep only each job's last record
        latest = {}
        for rec in records:
            if "job" in rec:
                latest[rec["job"]] = rec
        return list(latest.values())

    def test_auto_compacts_every_n_appends(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        with journal_mod.CompactingJournal(
                str(path), fold_keep=self._keep_latest,
                header=lambda: {"ev": "start"}, every=4) as j:
            for i in range(9):
                j.append({"ev": "tick", "job": "a", "n": i})
        records, torn = read_journal(str(path))
        assert not torn
        # two compactions happened (at 4 and 8); the 9th append remains
        assert [r["ev"] for r in records] == ["start", "tick", "tick"]
        assert records[-1]["n"] == 8

    def test_bounded_size_under_sustained_appends(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        with journal_mod.CompactingJournal(
                str(path), fold_keep=self._keep_latest, every=8) as j:
            for i in range(200):
                j.append({"ev": "tick", "job": "a", "n": i})
            high_water = path.stat().st_size
        # 200 appends, but the file never holds more than a compaction
        # window: one folded record plus up to `every` fresh lines
        assert high_water < 9 * 60

    def test_journal_stays_replayable_after_compaction(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        with journal_mod.CompactingJournal(
                str(path), fold_keep=self._keep_latest, every=2) as j:
            j.append({"ev": "a", "job": "x"})
            j.append({"ev": "b", "job": "x"})  # compacts here
            j.append({"ev": "c", "job": "y"})
        records, torn = read_journal(str(path))
        assert not torn
        assert self._keep_latest(records) == [
            {"ev": "b", "job": "x"}, {"ev": "c", "job": "y"}]

    def test_compact_now_is_idempotent(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        with journal_mod.CompactingJournal(
                str(path), fold_keep=self._keep_latest, every=100) as j:
            j.append({"ev": "a", "job": "x"})
            assert j.compact_now() == 1
            assert j.compact_now() == 1
        records, _ = read_journal(str(path))
        assert records == [{"ev": "a", "job": "x"}]

    def test_rejects_bad_interval(self, tmp_path):
        with pytest.raises(ValueError):
            journal_mod.CompactingJournal(
                str(tmp_path / "j.jsonl"),
                fold_keep=self._keep_latest, every=0)


# --- chaos plans -----------------------------------------------------------


class TestChaos:
    def test_parse_forms(self):
        plan = parse_chaos("kill-worker:p=0.25,stall:p=0.5", seed=3)
        assert plan.kill_worker_p == 0.25
        assert plan.stall_p == 0.5
        assert plan.seed == 3

    @pytest.mark.parametrize("spec", [
        "kill-worker", "kill-worker:q=0.5", "kill-worker:p=nope",
        "kill-worker:p=1.5", "explode:p=0.5", "kill-worker:p=0,stall:p=0",
        "",
    ])
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_chaos(spec)

    def test_decisions_are_deterministic_in_seed_and_key(self):
        plan = ChaosPlan(kill_worker_p=0.5, seed=11)
        decisions = [plan.decide(f"key-{i}", 0) for i in range(50)]
        assert decisions == [plan.decide(f"key-{i}", 0) for i in range(50)]
        assert any(d == "kill" for d in decisions)
        assert any(d is None for d in decisions)
        other = ChaosPlan(kill_worker_p=0.5, seed=12)
        assert decisions != [other.decide(f"key-{i}", 0) for i in range(50)]

    def test_retries_are_never_sabotaged(self):
        plan = ChaosPlan(kill_worker_p=1.0, stall_p=1.0, seed=0)
        assert plan.decide("k", 0) == "kill"
        assert plan.decide("k", 1) is None
        assert plan.decide("k", 5) is None

    def test_certain_probabilities(self):
        assert ChaosPlan(kill_worker_p=1.0).decide("k", 0) == "kill"
        assert ChaosPlan(stall_p=1.0).decide("k", 0) == "stall"
        assert ChaosPlan().decide("k", 0) is None


# --- the memo cache --------------------------------------------------------


class TestMemoCache:
    def test_publish_then_lookup(self, tmp_path):
        cache = MemoCache(str(tmp_path))
        src = tmp_path / "stdout.txt"
        src.write_text("result bytes\n")
        assert cache.lookup("k" * 64) is None
        path = cache.publish("k" * 64, str(src))
        assert cache.lookup("k" * 64) == path
        assert Path(path).read_text() == "result bytes\n"

    def test_publish_writes_digest_sidecar(self, tmp_path):
        import hashlib

        cache = MemoCache(str(tmp_path))
        src = tmp_path / "stdout.txt"
        src.write_text("result bytes\n")
        cache.publish("k" * 64, str(src))
        sidecar = Path(cache.digest_path("k" * 64))
        assert sidecar.read_text().strip() \
            == hashlib.sha256(b"result bytes\n").hexdigest()

    def test_tampered_result_is_a_counted_miss(self, tmp_path):
        from repro.analysis.counters import CounterSet

        counters = CounterSet()
        cache = MemoCache(str(tmp_path), counters=counters)
        src = tmp_path / "stdout.txt"
        src.write_text("good bytes\n")
        key = "k" * 64
        path = cache.publish(key, str(src))
        Path(path).write_bytes(b"flipped bit\n")  # corrupt on disk
        assert cache.lookup(key) is None
        assert counters.snapshot()["memo.corrupt"] == 1
        # a re-publish (the re-run's output) heals the entry
        cache.publish(key, str(src))
        assert cache.lookup(key) == path
        assert counters.snapshot()["memo.hit"] == 1

    def test_sidecarless_result_is_a_counted_miss(self, tmp_path):
        from repro.analysis.counters import CounterSet

        counters = CounterSet()
        cache = MemoCache(str(tmp_path), counters=counters)
        key = "k" * 64
        # a crash between result and sidecar writes leaves exactly this
        Path(cache.result_path(key)).write_text("orphan\n")
        assert cache.lookup(key) is None
        assert counters.snapshot()["memo.corrupt"] == 1

    def test_counters_are_optional(self, tmp_path):
        cache = MemoCache(str(tmp_path))
        Path(cache.result_path("k" * 64)).write_text("orphan\n")
        assert cache.lookup("k" * 64) is None  # no counter, no crash


# --- attempt argv construction ---------------------------------------------


class TestWorkerArgv:
    def test_checkpoint_flags_injected(self, tmp_path):
        argv = worker.build_attempt_argv(
            "faults", ["--fault-seed", "7"], str(tmp_path), use_resume=False)
        assert argv[:3] == ["faults", "--fault-seed", "7"]
        assert "--checkpoint-every" in argv and "--checkpoint-dir" in argv

    def test_non_checkpointable_left_alone(self, tmp_path):
        argv = worker.build_attempt_argv("fig4", [], str(tmp_path),
                                         use_resume=False)
        assert argv == ["fig4"]

    def test_resume_attempt_targets_snapshot(self, tmp_path):
        argv = worker.build_attempt_argv("faults", [], str(tmp_path),
                                         use_resume=True)
        assert argv == ["resume", worker.snapshot_path(str(tmp_path))]

    def test_trace_flag_injected_for_traceable(self, tmp_path):
        argv = worker.build_attempt_argv("fig5", [], str(tmp_path),
                                         use_resume=False, trace=True)
        assert "--trace-out" in argv


# --- supervision, end to end ----------------------------------------------

FAST_SPECS = [
    {"command": "fig4"},
    {"command": "breakdown", "args": ["--mb", "1"]},
    {"id": "faults-7", "command": "faults",
     "args": ["--fault-plan", "link_loss=0.02", "--fault-seed", "7"]},
]


class TestClassifyExit:
    def test_taxonomy(self):
        from repro.batch import classify_exit

        assert classify_exit(0, False) == ("done", "exit 0")
        assert classify_exit(-9, False) == ("crash", "killed by signal 9")
        assert classify_exit(-9, True) == ("timeout", "timeout")
        assert classify_exit(2, False) == ("permanent", "exit 2 (permanent)")
        assert classify_exit(1, False)[0] == "transient"
        assert classify_exit(3, False)[0] == "transient"

    def test_exit_2_is_permanent_even_without_timeout_flag(self):
        from repro.batch import classify_exit

        kind, reason = classify_exit(2, False)
        assert kind == "permanent"
        assert "2" in reason


def _write_specs(tmp_path, docs, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(docs))
    return str(path)


def _run(specs_path, out_dir, **kwargs):
    supervisor = BatchSupervisor(load_specfile(specs_path), str(out_dir),
                                 stream=io.StringIO(), **kwargs)
    code = supervisor.run()
    return code, supervisor


def _result_bytes(out_dir):
    results = Path(out_dir) / "results"
    return {p.name: p.read_bytes() for p in results.glob("*.out")}


class TestBatchRuns:
    def test_clean_batch_completes(self, tmp_path, capsys):
        specs = _write_specs(tmp_path, FAST_SPECS)
        code, sup = _run(specs, tmp_path / "out", workers=3)
        assert code == 0
        report = capsys.readouterr().out
        assert "batch: 3 job(s): 3 done" in report
        assert (tmp_path / "out" / "report.txt").exists()
        results = _result_bytes(tmp_path / "out")
        assert len(results) == 3 and all(results.values())
        records, torn = read_journal(str(tmp_path / "out" / "jobs.jsonl"))
        assert not torn
        assert records[0]["ev"] == "batch-start"
        assert records[-1] == {"ev": "batch-end", "done": 3, "failed": 0,
                               "interrupted": False}

    def test_chaos_kill_results_byte_identical(self, tmp_path, capsys):
        specs = _write_specs(tmp_path, FAST_SPECS)
        code, _ = _run(specs, tmp_path / "plain", workers=3)
        assert code == 0
        chaos = parse_chaos("kill-worker:p=1.0", seed=1)
        code, sup = _run(specs, tmp_path / "chaos", workers=3,
                         chaos=chaos, backoff=0.05)
        assert code == 0
        rows = sup.report_rows()
        assert all(r["outcome"] == "done" for r in rows)
        assert sum(r["crashes"] for r in rows) == 3
        assert sum(r["retries"] for r in rows) == 3
        # the acceptance property: recovery is invisible in the results
        assert _result_bytes(tmp_path / "chaos") == \
            _result_bytes(tmp_path / "plain")

    def test_chaos_kill_recovers_from_snapshot(self, tmp_path, capsys):
        # a checkpointable driver killed mid-job must *resume*, not
        # restart: its second attempt is a `repro resume` of the
        # snapshot the first attempt left behind
        specs = _write_specs(tmp_path, [FAST_SPECS[2]])
        stream = io.StringIO()
        sup = BatchSupervisor(load_specfile(specs), str(tmp_path / "out"),
                              chaos=parse_chaos("kill-worker:p=1.0"),
                              backoff=0.05, stream=stream)
        assert sup.run() == 0
        log = stream.getvalue()
        assert "retrying in 0.05s from snapshot" in log
        assert "attempt 2 resumed from snapshot" in log

    def test_stall_chaos_recovered_by_timeout(self, tmp_path, capsys):
        specs = _write_specs(tmp_path, [FAST_SPECS[2]])
        chaos = parse_chaos("stall:p=1.0", seed=0)
        code, sup = _run(specs, tmp_path / "out", chaos=chaos,
                         timeout=1.5, backoff=0.05)
        assert code == 0
        rows = sup.report_rows()
        assert rows[0]["timeouts"] == 1 and rows[0]["outcome"] == "done"

    def test_permanent_failure_exits_1_with_warning(self, tmp_path, capsys):
        # exit 2 (bad spec) is deterministic: it must fail fast after
        # exactly ONE attempt, never burning the retry budget on a
        # failure that cannot change
        specs = _write_specs(tmp_path, [
            {"command": "fig4"},
            {"id": "doomed", "command": "faults",
             "args": ["--fault-plan", "link_sloth=1"]},
        ])
        code, sup = _run(specs, tmp_path / "out", retries=3, backoff=0.05)
        assert code == 1
        report = capsys.readouterr().out
        assert "WARNING" in report and "1 job(s) failed permanently" in report
        rows = {r["job"]: r for r in sup.report_rows()}
        assert rows["doomed"]["outcome"] == "failed (exit 2 (permanent))"
        assert rows["doomed"]["attempts"] == 1
        assert rows["doomed"]["retries"] == 0
        assert rows["job-000-fig4"]["outcome"] == "done"
        records, _ = read_journal(str(tmp_path / "out" / "jobs.jsonl"))
        fails = [r for r in records if r["ev"] == "failed"]
        assert len(fails) == 1 and fails[0]["permanent"] is True
        assert not any(r["ev"] == "retry" for r in records)

    def test_transient_failure_still_retries(self, tmp_path, capsys):
        # classification sanity: exit 1 (here: payload corrupted by an
        # always-corrupting link after retry exhaustion is exit 1 — use
        # a plan that makes the run abort cleanly) must keep retrying
        specs = _write_specs(tmp_path, [
            {"id": "flaky", "command": "faults",
             "args": ["--fault-plan", "link_loss=1.0"]},
        ])
        code, sup = _run(specs, tmp_path / "out", retries=1, backoff=0.05)
        assert code == 1
        rows = sup.report_rows()
        assert rows[0]["attempts"] == 2  # transient: budget consumed

    def test_duplicate_configs_served_from_memo_cache(self, tmp_path, capsys):
        specs = _write_specs(tmp_path, [
            {"id": "first", "command": "fig4"},
            {"id": "twin", "command": "fig4"},
        ])
        code, sup = _run(specs, tmp_path / "out", workers=2)
        assert code == 0
        rows = {r["job"]: r for r in sup.report_rows()}
        assert rows["first"]["cached"] or rows["twin"]["cached"]
        assert len(_result_bytes(tmp_path / "out")) == 1

    def test_existing_journal_requires_resume(self, tmp_path, capsys):
        specs = _write_specs(tmp_path, [{"command": "fig4"}])
        code, _ = _run(specs, tmp_path / "out")
        assert code == 0
        capsys.readouterr()
        with pytest.raises(BatchError, match="--resume"):
            _run(specs, tmp_path / "out")

    def test_resume_serves_done_jobs_without_rerunning(self, tmp_path,
                                                       capsys):
        specs = _write_specs(tmp_path, FAST_SPECS)
        code, _ = _run(specs, tmp_path / "out", workers=3)
        assert code == 0
        before = _result_bytes(tmp_path / "out")
        mtimes = {p: p.stat().st_mtime_ns
                  for p in (tmp_path / "out" / "results").glob("*.out")}
        capsys.readouterr()
        code, sup = _run(specs, tmp_path / "out", workers=3, resume=True)
        assert code == 0
        assert all(r["cached"] for r in sup.report_rows())
        assert all(r["attempts"] == 0 for r in sup.report_rows())
        assert _result_bytes(tmp_path / "out") == before
        assert {p: p.stat().st_mtime_ns
                for p in (tmp_path / "out" / "results").glob("*.out")} \
            == mtimes

    def test_resume_requeues_failed_jobs(self, tmp_path, capsys):
        bad = _write_specs(tmp_path, [
            {"id": "flaky", "command": "faults",
             "args": ["--fault-plan", "link_sloth=1"]},
        ], name="bad.json")
        code, _ = _run(bad, tmp_path / "out", retries=0, backoff=0.05)
        assert code == 1
        # same id, fixed args: the spec changed, so resume re-runs it
        good = _write_specs(tmp_path, [
            {"id": "flaky", "command": "faults",
             "args": ["--fault-plan", "link_loss=0.02"]},
        ], name="good.json")
        capsys.readouterr()
        code, sup = _run(good, tmp_path / "out", resume=True)
        assert code == 0
        assert sup.report_rows()[0]["outcome"] == "done"

    def test_batch_trace_out_merges_job_slices(self, tmp_path, capsys):
        specs = _write_specs(tmp_path, [
            {"id": "a", "command": "faults",
             "args": ["--fault-seed", "1"]},
            {"id": "b", "command": "faults",
             "args": ["--fault-seed", "2"]},
        ])
        trace_path = tmp_path / "batch-trace.json"
        code, _ = _run(specs, tmp_path / "out", workers=2,
                       trace_out=str(trace_path))
        assert code == 0
        doc = json.loads(trace_path.read_text())
        assert sorted(doc["otherData"]["merged_jobs"]) == ["a", "b"]
        names = [ev["args"]["name"] for ev in doc["traceEvents"]
                 if ev.get("ph") == "M" and ev.get("name") == "process_name"]
        assert any(n.startswith("a/") for n in names)
        assert any(n.startswith("b/") for n in names)
        pids = {ev["pid"] for ev in doc["traceEvents"]}
        assert len(pids) >= 2  # jobs renumbered into a shared pid space

    def test_preflight_rejections(self, tmp_path):
        specs = load_specfile(_write_specs(tmp_path, [{"command": "fig4"}]))
        with pytest.raises(BatchError, match="pool size"):
            BatchSupervisor(specs, str(tmp_path / "o"), workers=0)
        with pytest.raises(BatchError, match="retry budget"):
            BatchSupervisor(specs, str(tmp_path / "o"), retries=-1)
        with pytest.raises(BatchError, match="stall needs"):
            BatchSupervisor(specs, str(tmp_path / "o"),
                            chaos=parse_chaos("stall:p=0.5"))


class TestBatchCLI:
    def test_cli_end_to_end(self, tmp_path, capsys):
        specs = _write_specs(tmp_path, [{"command": "fig4"}])
        assert main(["batch", specs, "--out-dir", str(tmp_path / "out"),
                     "--jobs", "1"]) == 0
        assert "batch: 1 job(s): 1 done" in capsys.readouterr().out

    def test_cli_bad_specfile_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(SystemExit) as exc:
            main(["batch", str(bad), "--out-dir", str(tmp_path / "out")])
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_bad_chaos_exits_2(self, tmp_path, capsys):
        specs = _write_specs(tmp_path, [{"command": "fig4"}])
        with pytest.raises(SystemExit) as exc:
            main(["batch", specs, "--out-dir", str(tmp_path / "out"),
                  "--chaos", "explode:p=0.5"])
        assert exc.value.code == 2
        assert "error: --chaos:" in capsys.readouterr().err

    def test_cli_journal_collision_exits_2(self, tmp_path, capsys):
        specs = _write_specs(tmp_path, [{"command": "fig4"}])
        assert main(["batch", specs, "--out-dir",
                     str(tmp_path / "out")]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit) as exc:
            main(["batch", specs, "--out-dir", str(tmp_path / "out")])
        assert exc.value.code == 2
        assert "--resume" in capsys.readouterr().err


class TestSigintShutdown:
    def test_sigint_flushes_journal_then_resume_completes(self, tmp_path):
        # a worker wedged by stall chaos holds the batch open; SIGINT
        # must tear it down with exit 130 and a replayable journal
        specs = _write_specs(tmp_path, [
            {"command": "fig4"},
            {"id": "wedged", "command": "faults", "timeout": 300},
        ])
        out_dir = tmp_path / "out"
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "batch", specs,
             "--out-dir", str(out_dir), "--jobs", "2",
             "--chaos", "stall:p=1.0", "--timeout", "300"],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        deadline = time.monotonic() + 30.0
        journal = out_dir / "jobs.jsonl"
        # wait until the wedged job's attempt is journalled, then ^C
        while time.monotonic() < deadline:
            if journal.exists() and '"ev":"running"' in journal.read_text():
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("batch never started a worker")
        time.sleep(0.3)
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 130, stderr
        assert "interrupted" in stderr
        records, _torn = read_journal(str(journal))
        assert any(r.get("ev") == "interrupted" for r in records)
        # the journal replays: --resume finishes the batch cleanly
        finish = subprocess.run(
            [sys.executable, "-m", "repro", "batch", specs,
             "--out-dir", str(out_dir), "--jobs", "2", "--resume"],
            env=env, cwd=str(tmp_path), capture_output=True, text=True,
            timeout=60)
        assert finish.returncode == 0, finish.stderr
        assert "2 done" in finish.stdout
        assert len(_result_bytes(out_dir)) == 2

    def test_sigterm_drains_like_sigint_with_exit_143(self, tmp_path):
        # SIGTERM is what orchestrators send; it must get the same
        # graceful teardown as ^C, distinguished only by exit 143
        specs = _write_specs(tmp_path, [
            {"command": "fig4"},
            {"id": "wedged", "command": "faults", "timeout": 300},
        ])
        out_dir = tmp_path / "out"
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "batch", specs,
             "--out-dir", str(out_dir), "--jobs", "2",
             "--chaos", "stall:p=1.0", "--timeout", "300"],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        deadline = time.monotonic() + 30.0
        journal = out_dir / "jobs.jsonl"
        while time.monotonic() < deadline:
            if journal.exists() and '"ev":"running"' in journal.read_text():
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("batch never started a worker")
        time.sleep(0.3)
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 143, stderr
        assert "interrupted" in stderr
        records, _torn = read_journal(str(journal))
        interrupted = [r for r in records if r.get("ev") == "interrupted"]
        assert interrupted and interrupted[-1]["signal"] == signal.SIGTERM
        finish = subprocess.run(
            [sys.executable, "-m", "repro", "batch", specs,
             "--out-dir", str(out_dir), "--jobs", "2", "--resume"],
            env=env, cwd=str(tmp_path), capture_output=True, text=True,
            timeout=60)
        assert finish.returncode == 0, finish.stderr
        assert "2 done" in finish.stdout
        assert len(_result_bytes(out_dir)) == 2


class TestMemoVerificationInBatch:
    def test_corrupted_done_result_reruns_on_resume(self, tmp_path, capsys):
        specs = _write_specs(tmp_path, FAST_SPECS[:1])
        code, _ = _run(specs, tmp_path / "out")
        assert code == 0
        results = list((tmp_path / "out" / "results").glob("*.out"))
        assert len(results) == 1
        good = results[0].read_bytes()
        results[0].write_bytes(b"bit rot\n")
        capsys.readouterr()
        code, sup = _run(specs, tmp_path / "out", resume=True)
        assert code == 0
        row = sup.report_rows()[0]
        # not served from cache: the corrupt entry forced a re-run,
        # which republished the identical bytes
        assert row["attempts"] == 1 and not row["cached"]
        assert results[0].read_bytes() == good
        assert sup.counters.snapshot().get("memo.corrupt", 0) >= 1
