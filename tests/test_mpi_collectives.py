"""Tests for the collective operations."""

import numpy as np
import pytest

from repro.mpi import MPIConfig, MPIWorld
from repro.systems import Cluster, presets

KB = 1024
MB = 1024 * 1024


def run_collective(program, ppn=2, n_nodes=2):
    cluster = Cluster(presets.opteron_infinihost_pcie(), n_nodes=n_nodes)
    world = MPIWorld(cluster, ppn=ppn)
    return world.run(program)


class TestBarrier:
    def test_barrier_synchronises(self):
        def program(comm):
            # stagger arrival: rank r works r*1000 ticks first
            yield from comm.compute_ticks(comm.rank * 1000)
            yield from comm.barrier()
            return comm.kernel.now

        results = run_collective(program)
        times = [r.value for r in results]
        slowest_arrival = max(times)
        # nobody leaves the barrier before the slowest rank arrived
        assert min(times) >= 3000

    def test_back_to_back_barriers(self):
        def program(comm):
            for _ in range(3):
                yield from comm.barrier()
            return True

        assert all(r.value for r in run_collective(program))


class TestBcast:
    @pytest.mark.parametrize("root", [0, 2, 3])
    def test_all_ranks_get_payload(self, root):
        def program(comm):
            data = {"v": 42} if comm.rank == root else None
            got = yield from comm.bcast(root, 256, payload=data)
            return got

        results = run_collective(program)
        assert all(r.value == {"v": 42} for r in results)

    def test_single_rank_world(self):
        def program(comm):
            got = yield from comm.bcast(0, 8, payload="solo")
            return got

        results = run_collective(program, ppn=1, n_nodes=1)
        assert results[0].value == "solo"


class TestReduceAllreduce:
    def test_reduce_sums_at_root(self):
        def program(comm):
            got = yield from comm.reduce(0, 8, value=comm.rank + 1)
            return got

        results = run_collective(program)
        assert results[0].value == sum(range(1, 5))
        assert all(r.value is None for r in results[1:])

    def test_allreduce_sums_everywhere(self):
        def program(comm):
            got = yield from comm.allreduce(8, value=2 ** comm.rank)
            return got

        results = run_collective(program)
        assert all(r.value == 0b1111 for r in results)

    def test_allreduce_numpy_arrays(self):
        def program(comm):
            v = np.full(4, comm.rank, dtype=np.int64)
            got = yield from comm.allreduce(32, value=v, op=lambda a, b: a + b)
            return got

        results = run_collective(program)
        expected = np.full(4, 0 + 1 + 2 + 3, dtype=np.int64)
        for r in results:
            assert np.array_equal(r.value, expected)

    def test_allreduce_custom_op(self):
        def program(comm):
            got = yield from comm.allreduce(8, value=comm.rank, op=max)
            return got

        results = run_collective(program)
        assert all(r.value == 3 for r in results)

    def test_allreduce_non_power_of_two(self):
        def program(comm):
            got = yield from comm.allreduce(8, value=1)
            return got

        results = run_collective(program, ppn=3, n_nodes=1)
        assert all(r.value == 3 for r in results)


class TestAllgather:
    def test_rank_order(self):
        def program(comm):
            got = yield from comm.allgather(8, value=comm.rank * 10)
            return got

        results = run_collective(program)
        assert all(r.value == [0, 10, 20, 30] for r in results)

    def test_large_values_with_buffer(self):
        def program(comm):
            buf = comm.proc.malloc(comm.size * 256 * KB + 4096)
            v = np.full(8, comm.rank, dtype=np.int64)
            got = yield from comm.allgather(256 * KB, value=v, addr=buf)
            return got

        results = run_collective(program)
        for r in results:
            for i, arr in enumerate(r.value):
                assert np.array_equal(arr, np.full(8, i, dtype=np.int64))


class TestAlltoallv:
    def test_payload_routing(self):
        def program(comm):
            payloads = [f"{comm.rank}->{d}" for d in range(comm.size)]
            got = yield from comm.alltoallv([64] * comm.size, payloads=payloads)
            return got

        results = run_collective(program)
        for r in results:
            assert r.value == [f"{s}->{r.rank}" for s in range(4)]

    def test_large_exchange_with_buffers(self):
        def program(comm):
            temp = comm.proc.malloc(MB)
            payloads = [np.array([comm.rank, d]) for d in range(comm.size)]
            got = yield from comm.alltoallv(
                [128 * KB] * comm.size,
                payloads=payloads,
                addrs=[temp] * comm.size,
                recv_addrs=[temp] * comm.size,
            )
            return got

        results = run_collective(program)
        for r in results:
            for s, arr in enumerate(r.value):
                assert np.array_equal(arr, np.array([s, r.rank]))

    def test_sizes_length_validated(self):
        def program(comm):
            yield from comm.alltoallv([8])

        with pytest.raises(ValueError):
            run_collective(program)
