"""Unit tests for the glibc-like allocator."""

import pytest

from repro.alloc import AllocationError, LibcAllocator
from repro.alloc.libc import FASTBIN_MAX, HEADER, MMAP_THRESHOLD
from repro.mem import AddressSpace, HugeTLBfs, PhysicalMemory

MB = 1024 * 1024


@pytest.fixture
def aspace():
    pm = PhysicalMemory(1024 * MB, hugepages=32)
    return AddressSpace(pm, HugeTLBfs(pm))


@pytest.fixture
def libc(aspace):
    return LibcAllocator(aspace)


class TestBasicAllocation:
    def test_malloc_returns_mapped_address(self, libc, aspace):
        p = libc.malloc(100)
        paddr, size = aspace.translate(p)
        assert size == 4096

    def test_allocations_disjoint(self, libc):
        ptrs = [libc.malloc(64) for _ in range(50)]
        spans = sorted((p, p + 64) for p in ptrs)
        for (a0, a1), (b0, _b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_malloc_zero_rejected(self, libc):
        with pytest.raises(AllocationError):
            libc.malloc(0)

    def test_free_unknown_rejected(self, libc):
        with pytest.raises(AllocationError):
            libc.free(0xDEADBEEF)

    def test_double_free_rejected(self, libc):
        p = libc.malloc(64)
        libc.free(p)
        with pytest.raises(AllocationError):
            libc.free(p)

    def test_stats_track_live_bytes(self, libc):
        p = libc.malloc(1000)
        assert libc.stats.current_bytes == 1000
        libc.free(p)
        assert libc.stats.current_bytes == 0
        assert libc.stats.peak_bytes == 1000

    def test_calloc_charges_zeroing(self, libc):
        before = libc.stats.malloc_ns
        libc.calloc(10, 1000)
        cost_calloc = libc.stats.malloc_ns - before
        before = libc.stats.malloc_ns
        libc.malloc(10_000)
        cost_malloc = libc.stats.malloc_ns - before
        assert cost_calloc > cost_malloc

    def test_realloc_preserves_accounting(self, libc):
        p = libc.malloc(100)
        q = libc.realloc(p, 200)
        assert libc.stats.current_bytes == 200
        assert libc.allocation_size(q) == 200
        assert not libc.owns(p) or p == q

    def test_realloc_null_is_malloc(self, libc):
        q = libc.realloc(0, 128)
        assert libc.allocation_size(q) == 128


class TestBins:
    def test_fastbin_reuse_is_lifo(self, libc):
        a = libc.malloc(32)
        b = libc.malloc(32)
        libc.free(a)
        libc.free(b)
        c = libc.malloc(32)
        assert c == b  # LIFO: last freed is handed out first

    def test_fastbin_is_cheap(self, libc):
        p = libc.malloc(64)
        libc.free(p)
        before = libc.stats.malloc_ns
        libc.malloc(64)
        fast_cost = libc.stats.malloc_ns - before
        assert fast_cost < 100  # a couple of pointer ops, no search

    def test_bin_reuse_of_medium_blocks(self, libc):
        p = libc.malloc(4000)
        libc.free(p)
        q = libc.malloc(4000)
        assert q == p  # coalesce + split hands back the same spot

    def test_split_and_coalesce_cycle(self, libc):
        """Same-size alloc/free cycles exercise the split/coalesce churn
        the paper's no-coalesce design avoids."""
        costs = []
        for _ in range(10):
            before = libc.stats.total_ns
            p = libc.malloc(8000)
            libc.free(p)
            costs.append(libc.stats.total_ns - before)
        assert min(costs) > 0


class TestMmapPath:
    def test_large_goes_to_mmap(self, libc, aspace):
        p = libc.malloc(MMAP_THRESHOLD)
        vma = aspace.find_vma(p)
        assert vma is not None
        assert vma.name == "libc-mmap"

    def test_mmap_free_unmaps(self, libc, aspace):
        pm = aspace.physical
        before = pm.free_small_frames
        p = libc.malloc(2 * MB)
        assert pm.free_small_frames < before
        libc.free(p)
        assert pm.free_small_frames == before

    def test_mmap_cycle_repays_population(self, libc):
        """Each mmap alloc/free cycle repays syscall + page population —
        the thrash cost hugepage placement eliminates."""
        cycle_costs = []
        for _ in range(3):
            before = libc.stats.total_ns
            p = libc.malloc(8 * MB)
            libc.free(p)
            cycle_costs.append(libc.stats.total_ns - before)
        # no amortization: every cycle pays roughly the same
        assert max(cycle_costs) < 1.5 * min(cycle_costs)
        assert min(cycle_costs) > 100_000  # population dominates (~0.8ms)

    def test_mmap_disabled_flag(self, aspace):
        libc = LibcAllocator(aspace, use_mmap=False)
        p = libc.malloc(2 * MB)
        vma = aspace.find_vma(p)
        assert vma is None or vma.name != "libc-mmap"


class TestHeapGrowth:
    def test_heap_grows_on_demand(self, libc, aspace):
        base_brk = aspace.brk
        libc.malloc(64 * 1024)
        assert aspace.brk > base_brk

    def test_trim_returns_memory(self, libc, aspace):
        ptrs = [libc.malloc(100 * 1024) for _ in range(4)]
        grown = aspace.brk
        for p in ptrs:
            libc.free(p)
        assert aspace.brk < grown

    def test_header_overhead_exists(self, libc):
        """Blocks carry metadata: two back-to-back allocations are spaced
        more than their payload."""
        a = libc.malloc(48)
        b = libc.malloc(48)
        assert abs(b - a) >= 48 + HEADER


class TestDiagnostics:
    def test_free_bytes_tracks(self, libc):
        p = libc.malloc(4000)
        held = libc.heap_bytes()
        freed_before = libc.free_bytes()
        libc.free(p)
        assert libc.free_bytes() > freed_before
        assert libc.heap_bytes() == held

    def test_live_allocations(self, libc):
        p = libc.malloc(64)
        q = libc.malloc(64)
        assert libc.live_allocations == 2
        libc.free(p)
        libc.free(q)
        assert libc.live_allocations == 0
