"""Tests for the baseline allocators (§2) and trace replay."""

import pytest

from repro.alloc import (
    HugepageLibraryAllocator,
    LibcAllocator,
    LibhugepageallocAllocator,
    LibhugetlbfsAllocator,
    TraceOp,
    abinit_like_trace,
    replay,
)
from repro.mem import AddressSpace, HugeTLBfs, PAGE_2M, PhysicalMemory

MB = 1024 * 1024
KB = 1024


def make_aspace(hugepages=256):
    pm = PhysicalMemory(2048 * MB, hugepages=hugepages)
    return AddressSpace(pm, HugeTLBfs(pm))


class TestLibhugetlbfs:
    def test_everything_in_hugepages(self):
        """§2: 'every buffer that is allocated by the libc resides in
        hugepages' — including tiny ones."""
        aspace = make_aspace()
        alloc = LibhugetlbfsAllocator(aspace)
        for size in (16, 1 * KB, 31 * KB, 1 * MB):
            p = alloc.malloc(size)
            _, page_size = aspace.translate(p)
            assert page_size == PAGE_2M

    def test_libc_machinery_still_manages(self):
        aspace = make_aspace()
        alloc = LibhugetlbfsAllocator(aspace)
        a = alloc.malloc(32)
        b = alloc.malloc(32)
        alloc.free(a)
        alloc.free(b)
        c = alloc.malloc(32)
        assert c == b  # fastbin LIFO: it's the libc allocator underneath

    def test_no_mmap_fallback(self):
        aspace = make_aspace()
        alloc = LibhugetlbfsAllocator(aspace)
        p = alloc.malloc(4 * MB)  # above the libc mmap threshold
        _, page_size = aspace.translate(p)
        assert page_size == PAGE_2M


class TestLibhugepagealloc:
    def test_no_shared_hugepages(self):
        """§2: 'every buffer is mapped into a separate hugepage'."""
        aspace = make_aspace()
        alloc = LibhugepageallocAllocator(aspace)
        a = alloc.malloc(100)
        b = alloc.malloc(100)
        pa, _ = aspace.translate(a)
        pb, _ = aspace.translate(b)
        assert pa // PAGE_2M != pb // PAGE_2M

    def test_waste_visible(self):
        aspace = make_aspace()
        alloc = LibhugepageallocAllocator(aspace)
        for _ in range(8):
            alloc.malloc(64)
        assert alloc.hugepages_held() == 8  # 16 MB for 512 bytes of data

    def test_not_thread_safe_flag(self):
        assert LibhugepageallocAllocator.thread_safe is False

    def test_free_releases_page(self):
        aspace = make_aspace()
        alloc = LibhugepageallocAllocator(aspace)
        free_before = aspace.hugetlbfs.free_pages
        p = alloc.malloc(100)
        assert aspace.hugetlbfs.free_pages == free_before - 1
        alloc.free(p)
        assert aspace.hugetlbfs.free_pages == free_before


class TestTraceGeneration:
    def test_deterministic(self):
        assert abinit_like_trace(seed=1) == abinit_like_trace(seed=1)
        assert abinit_like_trace(seed=1) != abinit_like_trace(seed=2)

    def test_balanced_per_iteration(self):
        trace = abinit_like_trace(iterations=5)
        mallocs = sum(1 for op in trace if op.op == "malloc")
        frees = sum(1 for op in trace if op.op == "free")
        assert mallocs - frees == 4  # only the persistent set stays live

    def test_validation(self):
        with pytest.raises(ValueError):
            abinit_like_trace(iterations=0)
        with pytest.raises(ValueError):
            TraceOp("malloc", 1, 0)
        with pytest.raises(ValueError):
            TraceOp("mystery", 1)


class TestReplay:
    def test_replay_counts(self):
        trace = abinit_like_trace(iterations=3)
        aspace = make_aspace()
        result = replay(trace, LibcAllocator(aspace))
        assert result.mallocs == sum(1 for op in trace if op.op == "malloc")
        assert result.frees == sum(1 for op in trace if op.op == "free")
        assert result.total_ns > 0

    def test_unknown_handle_rejected(self):
        aspace = make_aspace()
        with pytest.raises(ValueError):
            replay([TraceOp("free", 99)], LibcAllocator(aspace))

    def test_library_beats_libc_on_abinit_trace(self):
        """The §2 claim: 'allocation benefits of up to 10 times with our
        library (e.g. for Abinit)'.  The shape requirement here is a
        multiple-fold improvement."""
        trace = abinit_like_trace(iterations=10)
        r_libc = replay(trace, LibcAllocator(make_aspace()))
        r_lib = replay(trace, HugepageLibraryAllocator(make_aspace()))
        assert r_libc.total_ns / r_lib.total_ns > 3.0

    def test_mapping_cost_amortizes(self):
        """Hugepage mapping/population is one-time: a second pass over the
        same trace reuses the mapped pool and is strictly cheaper."""
        trace = abinit_like_trace(iterations=10)
        lib = HugepageLibraryAllocator(make_aspace())
        cold = replay(trace, lib)
        warm = replay(trace, lib)
        assert warm.total_ns < cold.total_ns
        assert lib.hugepages_mapped > 0

    def test_warm_library_reaches_order_of_magnitude_over_libc(self):
        """§2's 'up to 10 times': once the hugepage pool is warm, the
        dense freelist beats libc's churn by roughly an order of
        magnitude on the Abinit trace."""
        trace = abinit_like_trace(iterations=10)
        libc = LibcAllocator(make_aspace())
        replay(trace, libc)
        r_libc = replay(trace, libc)
        lib = HugepageLibraryAllocator(make_aspace())
        replay(trace, lib)
        r_lib = replay(trace, lib)
        assert r_libc.total_ns / r_lib.total_ns > 8.0

    def test_peak_bytes_recorded(self):
        trace = abinit_like_trace(iterations=2)
        result = replay(trace, LibcAllocator(make_aspace()))
        assert result.peak_bytes > 48 * MB  # 6 large arrays of 8 MB live
