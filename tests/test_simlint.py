"""simlint: whole-program pass detection on planted fixture packages,
baseline-ledger semantics, CLI exit-code contract, and the assertion
that the shipped ``src/repro`` tree lints clean against the committed
ledger."""

import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from simlint import counterkeys, ownership, taint, checkpoint_cov  # noqa: E402
from simlint.baseline import (Baseline, BaselineError,  # noqa: E402
                              PassFinding, apply_baseline)
from simlint.cli import ANALYSES, main  # noqa: E402
from simlint.model import Project  # noqa: E402

FIXTURES = REPO / "tests" / "fixtures" / "simlint"
BADPKG = FIXTURES / "badpkg"
SPEC = FIXTURES / "spec.json"
REGISTRY = FIXTURES / "registry.json"


def _project():
    return Project(BADPKG)


def _symbols(findings):
    return {f.symbol for f in findings}


class TestTaintPass:
    def test_host_value_reaching_sim_boundary_flagged(self):
        findings = taint.run(_project())
        assert "badpkg.tainted.boot" in _symbols(findings)

    def test_clean_module_not_flagged(self):
        findings = taint.run(_project())
        assert not any(f.symbol.startswith("badpkg.metrics")
                       for f in findings)


class TestCheckpointCoveragePass:
    def _findings(self):
        spec = json.loads(SPEC.read_text())["entries"]
        return checkpoint_cov.run(_project(), spec)

    def test_never_captured_attribute_flagged(self):
        assert "badpkg.snapshot.Widget.scratch" in _symbols(self._findings())

    def test_captured_but_not_restored_flagged(self):
        assert "badpkg.snapshot.Widget.depth" in _symbols(self._findings())

    def test_round_tripped_attribute_clean(self):
        assert "badpkg.snapshot.Widget.items" not in _symbols(self._findings())


class TestOwnershipPass:
    def _findings(self):
        return ownership.run(_project())

    def test_early_return_without_release_flagged(self):
        assert ("badpkg.unbalanced.forgets_on_error"
                in _symbols(self._findings()))

    def test_leaked_pin_flagged(self):
        assert ("badpkg.unbalanced.PinTable.borrow"
                in _symbols(self._findings()))

    def test_balanced_pair_clean(self):
        assert ("badpkg.unbalanced.balanced"
                not in _symbols(self._findings()))


class TestCounterKeysPass:
    def _findings(self):
        registry = counterkeys.load_registry(REGISTRY)
        return counterkeys.run(_project(), registry)

    def test_near_miss_reported_as_probable_typo(self):
        typo = [f for f in self._findings() if "fx.tocks" in f.symbol]
        assert typo and "fx.ticks" in typo[0].message

    def test_unknown_key_reported_plainly(self):
        unknown = [f for f in self._findings()
                   if "fx.unheard_of" in f.symbol]
        assert unknown and "fx.ticks" not in unknown[0].message

    def test_registered_key_clean(self):
        assert not any(f.symbol.endswith("fx.ticks")
                       for f in self._findings())


class TestBaselineLedger:
    def _finding(self):
        return PassFinding(pass_id="host-taint", path="x.py", line=1,
                           symbol="pkg.mod.fn", message="m")

    def test_matching_entry_suppresses(self, tmp_path):
        ledger = tmp_path / "baseline.json"
        ledger.write_text(json.dumps({"entries": [
            {"pass": "host-taint", "symbol": "pkg.mod.fn",
             "reason": "reviewed: value is a config constant"}]}))
        baseline = Baseline.load(ledger)
        assert apply_baseline([self._finding()], baseline) == []
        assert baseline.stale_entries() == []

    def test_unmatched_entry_is_stale_not_fatal(self, tmp_path):
        ledger = tmp_path / "baseline.json"
        ledger.write_text(json.dumps({"entries": [
            {"pass": "host-taint", "symbol": "pkg.gone.fn",
             "reason": "fixed long ago"}]}))
        baseline = Baseline.load(ledger)
        assert apply_baseline([self._finding()], baseline) == [self._finding()]
        assert [e.symbol for e in baseline.stale_entries()] == ["pkg.gone.fn"]

    def test_entry_without_reason_rejected(self, tmp_path):
        ledger = tmp_path / "baseline.json"
        ledger.write_text(json.dumps({"entries": [
            {"pass": "host-taint", "symbol": "pkg.mod.fn", "reason": "  "}]}))
        with pytest.raises(BaselineError, match="justification"):
            Baseline.load(ledger)

    def test_every_committed_entry_is_justified(self):
        baseline = Baseline.load(REPO / "tools" / "simlint" / "baseline.json")
        assert baseline.entries
        assert all(e.reason.strip() for e in baseline.entries)


class TestCliContract:
    def test_shipped_tree_lints_clean(self, capsys):
        assert main([str(REPO / "src" / "repro")]) == 0
        assert "stale baseline entry" not in capsys.readouterr().err

    def test_fixture_package_trips_every_pass(self, capsys):
        rc = main([str(BADPKG), "--no-baseline",
                   "--checkpoint-spec", str(SPEC),
                   "--registry", str(REGISTRY),
                   "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        checks = {f["check"] for f in payload["findings"]}
        assert {"host-taint", "checkpoint-coverage", "ownership-pairing",
                "counter-keys"} <= checks
        assert payload["counts"]["passes"] == len(payload["findings"])

    def test_baseline_silences_fixture_findings(self, tmp_path, capsys):
        rc = main([str(BADPKG), "--no-baseline",
                   "--checkpoint-spec", str(SPEC),
                   "--registry", str(REGISTRY), "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        ledger = tmp_path / "baseline.json"
        ledger.write_text(json.dumps({"entries": [
            {"pass": f["check"], "symbol": f["symbol"],
             "reason": "fixture: planted defect, suppressed for this test"}
            for f in payload["findings"]]}))
        rc = main([str(BADPKG), "--baseline", str(ledger),
                   "--checkpoint-spec", str(SPEC),
                   "--registry", str(REGISTRY)])
        assert rc == 0

    def test_json_findings_carry_location_fields(self, capsys):
        main([str(BADPKG), "--no-baseline", "--only", "host-taint",
              "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]
        for f in payload["findings"]:
            assert {"check", "path", "line", "symbol",
                    "message"} <= set(f)

    def test_unknown_analysis_id_exits_2(self, capsys):
        assert main([str(BADPKG), "--only", "no-such-pass"]) == 2
        assert "unknown analysis" in capsys.readouterr().err

    def test_missing_path_exits_2(self, capsys):
        assert main(["/no/such/tree"]) == 2

    def test_malformed_baseline_exits_2(self, tmp_path, capsys):
        ledger = tmp_path / "baseline.json"
        ledger.write_text(json.dumps({"entries": [
            {"pass": "host-taint", "symbol": "x"}]}))
        assert main([str(BADPKG), "--baseline", str(ledger)]) == 2

    def test_syntax_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        assert main([str(bad)]) == 2
        assert "syntax error" in capsys.readouterr().err

    def test_list_rules_names_every_analysis(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for analysis in ANALYSES[1:]:
            assert analysis in out
        assert "wallclock" in out

    def test_perline_rules_still_run_under_simlint(self, tmp_path, capsys):
        mod = tmp_path / "wall.py"
        mod.write_text("import time\nt = time.time()\n")
        assert main([str(mod), "--no-baseline"]) == 1
        assert "wallclock" in capsys.readouterr().out

    def test_update_counter_registry_regenerates(self, tmp_path, capsys):
        registry = tmp_path / "registry.json"
        rc = main([str(BADPKG), "--no-baseline",
                   "--only", "counter-keys",
                   "--registry", str(registry),
                   "--update-counter-registry"])
        payload = json.loads(registry.read_text())
        assert "fx.ticks" in payload["keys"]
        assert "fx.tocks" in payload["keys"]
        assert rc == 0  # a freshly generated registry matches the tree
