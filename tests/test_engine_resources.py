"""Unit tests for Resource, Store and Channel (repro.engine.resources)."""

import pytest

from repro.engine import Channel, Resource, SimError, SimKernel, Store


@pytest.fixture
def kernel():
    return SimKernel()


class TestResource:
    def test_grant_within_capacity(self, kernel):
        res = Resource(kernel, capacity=2)
        grants = []

        def user(name):
            yield res.request()
            grants.append((kernel.now, name))
            yield kernel.timeout(10)
            res.release()

        kernel.process(user("a"))
        kernel.process(user("b"))
        kernel.run()
        assert grants == [(0, "a"), (0, "b")]

    def test_fifo_queueing(self, kernel):
        res = Resource(kernel, capacity=1)
        grants = []

        def user(name, hold):
            yield res.request()
            grants.append((kernel.now, name))
            yield kernel.timeout(hold)
            res.release()

        kernel.process(user("a", 10))
        kernel.process(user("b", 10))
        kernel.process(user("c", 10))
        kernel.run()
        assert grants == [(0, "a"), (10, "b"), (20, "c")]

    def test_release_without_request_rejected(self, kernel):
        res = Resource(kernel)
        with pytest.raises(SimError):
            res.release()

    def test_capacity_validation(self, kernel):
        with pytest.raises(SimError):
            Resource(kernel, capacity=0)

    def test_queue_length_visible(self, kernel):
        res = Resource(kernel, capacity=1)
        res.request()
        res.request()
        res.request()
        assert res.in_use == 1
        assert res.queue_length == 2


class TestStore:
    def test_put_then_get(self, kernel):
        store = Store(kernel)
        got = []

        def consumer():
            item = yield store.get()
            got.append((kernel.now, item))

        def producer():
            yield kernel.timeout(5)
            store.put("x")

        kernel.process(consumer())
        kernel.process(producer())
        kernel.run()
        assert got == [(5, "x")]

    def test_get_before_put_blocks(self, kernel):
        store = Store(kernel)
        order = []

        def consumer():
            item = yield store.get()
            order.append(item)

        kernel.process(consumer())
        kernel.run()
        assert order == []  # still blocked
        store.put("late")
        kernel.run()
        assert order == ["late"]

    def test_fifo_item_order(self, kernel):
        store = Store(kernel)
        for i in range(5):
            store.put(i)
        got = []

        def consumer():
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        kernel.process(consumer())
        kernel.run()
        assert got == [0, 1, 2, 3, 4]

    def test_capacity_blocks_put(self, kernel):
        store = Store(kernel, capacity=1)
        ev1 = store.put("a")
        ev2 = store.put("b")
        assert ev1.triggered
        assert not ev2.triggered
        done = []

        def consumer():
            x = yield store.get()
            done.append(x)

        kernel.process(consumer())
        kernel.run()
        assert done == ["a"]
        assert ev2.triggered  # freed slot accepted the queued put
        assert store.items == ("b",)

    def test_len_and_items(self, kernel):
        store = Store(kernel)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.items == (1, 2)


class TestChannel:
    def test_unfiltered_delivery(self, kernel):
        ch = Channel(kernel)
        got = []

        def receiver():
            msg = yield ch.receive()
            got.append(msg)

        kernel.process(receiver())
        kernel.run()
        ch.send("hello")
        kernel.run()
        assert got == ["hello"]

    def test_message_queues_without_receiver(self, kernel):
        ch = Channel(kernel)
        ch.send("early")
        assert ch.pending_messages == 1
        got = []

        def receiver():
            msg = yield ch.receive()
            got.append(msg)

        kernel.process(receiver())
        kernel.run()
        assert got == ["early"]
        assert ch.pending_messages == 0

    def test_predicate_matching(self, kernel):
        ch = Channel(kernel)
        got = []

        def receiver(tag):
            msg = yield ch.receive(lambda m: m["tag"] == tag)
            got.append((tag, msg["body"]))

        kernel.process(receiver(7))
        kernel.process(receiver(3))
        kernel.run()
        ch.send({"tag": 3, "body": "three"})
        ch.send({"tag": 7, "body": "seven"})
        kernel.run()
        assert sorted(got) == [(3, "three"), (7, "seven")]

    def test_unmatched_message_stays_queued(self, kernel):
        ch = Channel(kernel)

        def receiver():
            yield ch.receive(lambda m: m == "wanted")

        kernel.process(receiver())
        kernel.run()
        ch.send("unwanted")
        kernel.run()
        assert ch.pending_messages == 1
        assert ch.pending_receivers == 1
        ch.send("wanted")
        kernel.run()
        assert ch.pending_receivers == 0
        assert ch.pending_messages == 1

    def test_oldest_matching_message_first(self, kernel):
        ch = Channel(kernel)
        ch.send(("t", 1))
        ch.send(("t", 2))
        got = []

        def receiver():
            m = yield ch.receive(lambda m: m[0] == "t")
            got.append(m)

        kernel.process(receiver())
        kernel.run()
        assert got == [("t", 1)]
