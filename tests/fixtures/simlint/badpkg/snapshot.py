"""Planted checkpoint-coverage gap: ``Widget.depth`` is captured but
never restored, and ``Widget.scratch`` is never captured at all."""


class Widget:
    def __init__(self, depth):
        self.depth = depth
        self.items = []
        self.scratch = {}  # VIOLATION: never captured

    def dump_state(self):
        return {"depth": self.depth, "items": list(self.items)}

    def load_state(self, state):
        # VIOLATION: "depth" is captured but never written back
        self.items = list(state["items"])
