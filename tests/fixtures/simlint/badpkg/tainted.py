"""Planted host-taint flow: a wall-clock read travels through an
assignment and a helper's return value into a sim-context call."""

import time

from badpkg.kernel import SimKernel


def host_deadline():
    # host-only value: fine to read...
    started = time.monotonic()
    return started


def schedule_warmup(kernel: SimKernel, delay):
    # ...sim-context: calls a kernel primitive
    ev = kernel.timeout(delay)
    return ev


def boot(kernel: SimKernel):
    budget = host_deadline()
    # VIOLATION: host clock value parameterises the simulated timeline
    schedule_warmup(kernel, budget)
