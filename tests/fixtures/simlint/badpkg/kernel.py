"""A miniature kernel so the fixture's sim context is self-contained."""


class Event:
    def __init__(self):
        self.callbacks = []
        self._holds = 0

    def hold(self):
        self._holds += 1

    def release(self):
        self._holds -= 1


class SimKernel:
    def __init__(self):
        self.now = 0

    def event(self):
        return Event()

    def timeout(self, ticks):
        return Event()
