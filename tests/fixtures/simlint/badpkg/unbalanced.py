"""Planted ownership imbalances: an acquire through a direct callee
that an early-return path never releases, and a pin helper one caller
path never unpins."""

from badpkg.kernel import Event


def _grab(ev: Event):
    # helper applying a uniform +1 to its parameter: the pass inlines
    # this one level deep at each call site
    ev.hold()


def balanced(ev: Event):
    # negative control: acquire/release paired through try/finally
    ev.hold()
    try:
        return ev
    finally:
        ev.release()


def forgets_on_error(ev: Event, ok):
    _grab(ev)
    if not ok:
        # VIOLATION: early normal return without releasing
        return None
    ev.release()
    return True


class PinTable:
    def __init__(self):
        self.pins = {}

    def _pin(self, mr):
        self.pins[mr] = self.pins.get(mr, 0) + 1

    def _unpin(self, mr):
        self.pins[mr] -= 1

    def borrow(self, mr, cached):
        # VIOLATION: pinned on both paths, unpinned on one
        self._pin(mr)
        if cached:
            self._unpin(mr)
            return None
        return True
