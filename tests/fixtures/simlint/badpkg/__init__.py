"""Known-bad fixture package for the simlint whole-program passes.

Every module plants exactly the defect class its name says.  The CI
lint job runs simlint against this package as a self-test: the gate
only counts if it still fires on known violations (exit 1 with the
expected finding ids), not just on an already-clean tree.
"""
