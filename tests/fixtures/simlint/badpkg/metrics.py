"""Planted counter-key typo: one registered key, one edit-distance-1
near miss, one wholly unknown key."""


class _Counters:
    def add(self, name, amount=1):
        pass


class Engine:
    def __init__(self):
        self.counters = _Counters()

    def tick(self):
        self.counters.add("fx.ticks")          # registered
        self.counters.add("fx.tocks")          # VIOLATION: typo of fx.ticks
        self.counters.add("fx.unheard_of")     # VIOLATION: unregistered
