"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig5" in capsys.readouterr().out

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_breakdown(self, capsys):
        assert main(["breakdown", "--mb", "1"]) == 0
        out = capsys.readouterr().out
        assert "message breakdown" in out
        assert "4K cold" in out and "2M cached" in out

    def test_registration(self, capsys):
        assert main(["registration"]) == 0
        out = capsys.readouterr().out
        assert "Registration cost" in out
        # the "down to 1 %" row is present for the largest size
        assert "65536" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig 3" in out
        assert "only three times higher" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "offset" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "IMB SendRecv" in out
        assert "hugepages" in out

    def test_xeon(self, capsys):
        assert main(["xeon"]) == 0
        assert "driver patch" in capsys.readouterr().out

    def test_abinit(self, capsys):
        assert main(["abinit"]) == 0
        out = capsys.readouterr().out
        assert "allocator speedup" in out

    def test_pingpong(self, capsys):
        assert main(["pingpong"]) == 0
        assert "PingPong" in capsys.readouterr().out

    def test_fig6_class_w(self, capsys):
        assert main(["fig6", "--class", "W"]) == 0
        out = capsys.readouterr().out
        for kernel in ("CG", "EP", "IS", "LU", "MG"):
            assert kernel in out

    def test_tlb_class_w(self, capsys):
        assert main(["tlb", "--class", "W"]) == 0
        assert "TLB misses" in capsys.readouterr().out


class TestFaultPlanFiles:
    def test_json_plan_file_is_accepted(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text('{"link_loss": 0.02, "retry_cnt": 6}')
        assert main(["faults", "--fault-plan", str(plan),
                     "--fault-seed", "7"]) == 0
        out = capsys.readouterr().out
        assert f"fault plan: {plan}" in out
        assert "payload integrity: OK" in out

    def _expect_plan_error(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert "error: --fault-plan:" in capsys.readouterr().err

    def test_malformed_json_file_exits_friendly(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text('{"link_loss": ')
        self._expect_plan_error(["faults", "--fault-plan", str(plan)], capsys)

    def test_unknown_knob_in_file_exits_friendly(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text('{"link_sloth": 0.5}')
        self._expect_plan_error(["faults", "--fault-plan", str(plan)], capsys)

    def test_non_object_json_exits_friendly(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text('[0.5]')
        self._expect_plan_error(["faults", "--fault-plan", str(plan)], capsys)

    def test_missing_file_exits_friendly(self, tmp_path, capsys):
        self._expect_plan_error(
            ["faults", "--fault-plan", str(tmp_path / "absent.json")], capsys)

    def test_inline_spec_still_works(self, capsys):
        assert main(["faults", "--fault-plan", "link_loss=0.02",
                     "--fault-seed", "7"]) == 0
        assert "payload integrity: OK" in capsys.readouterr().out


class TestCheckpointCLI:
    def test_faults_checkpoint_then_resume_bit_identical(self, tmp_path, capsys):
        ckdir = tmp_path / "ck"
        assert main(["faults", "--fault-plan", "link_loss=0.02",
                     "--fault-seed", "7", "--checkpoint-every", "0",
                     "--checkpoint-dir", str(ckdir)]) == 0
        first = capsys.readouterr().out
        assert (ckdir / "latest.snap").exists()
        assert main(["resume", str(ckdir / "latest.snap")]) == 0
        assert capsys.readouterr().out == first

    def test_fig5_audit_flag(self, capsys):
        assert main(["fig5", "--audit"]) == 0
        captured = capsys.readouterr()
        assert "IMB SendRecv" in captured.out
        assert "clean" in captured.err

    def test_resume_rejects_garbage(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.snap"
        bogus.write_text("not a snapshot")
        with pytest.raises(SystemExit) as exc:
            main(["resume", str(bogus)])
        assert exc.value.code == 2
        assert "error: resume:" in capsys.readouterr().err

    def test_resume_rejects_forensic_snapshots(self, tmp_path, capsys):
        from repro.checkpoint import write_snapshot

        path = tmp_path / "post.snap"
        write_snapshot(str(path), {"kind": "cluster", "quiescent": False})
        with pytest.raises(SystemExit) as exc:
            main(["resume", str(path)])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "error: resume:" in err and "not a run ledger" in err


class TestSnapshotCorruption:
    """Corrupt or truncated snapshots must produce a one-line exit-2
    diagnostic on stderr — never a traceback (the crash-recovery path
    routinely meets half-written files)."""

    def _valid_snapshot(self, tmp_path):
        ckdir = tmp_path / "ck"
        assert main(["faults", "--checkpoint-every", "0",
                     "--checkpoint-dir", str(ckdir)]) == 0
        snap = ckdir / "latest.snap"
        assert snap.exists()
        return snap

    def _expect_resume_error(self, snap, capsys, needle):
        with pytest.raises(SystemExit) as exc:
            main(["resume", str(snap)])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "error: resume:" in err
        assert needle in err
        assert "Traceback" not in err

    def test_truncated_snapshot_exits_2(self, tmp_path, capsys):
        snap = self._valid_snapshot(tmp_path)
        capsys.readouterr()
        data = snap.read_bytes()
        snap.write_bytes(data[:len(data) - len(data) // 3])
        self._expect_resume_error(snap, capsys, "truncated or corrupt")

    def test_bitflipped_body_exits_2(self, tmp_path, capsys):
        snap = self._valid_snapshot(tmp_path)
        capsys.readouterr()
        data = bytearray(snap.read_bytes())
        data[-1] ^= 0xFF
        snap.write_bytes(bytes(data))
        self._expect_resume_error(snap, capsys, "truncated or corrupt")

    def test_checksum_valid_unpicklable_body_exits_2(self, tmp_path, capsys):
        import hashlib
        import json

        from repro.checkpoint import SCHEMA

        # a snapshot whose manifest checks out but whose body is not a
        # pickle (e.g. written by a build whose classes have moved)
        body = b"\x80\x04not really a pickle"
        manifest = {"schema": SCHEMA,
                    "sha256": hashlib.sha256(body).hexdigest(),
                    "payload_bytes": len(body), "meta": {}}
        snap = tmp_path / "odd.snap"
        snap.write_bytes(json.dumps(manifest).encode() + b"\n" + body)
        self._expect_resume_error(snap, capsys, "cannot unpickle")

    def test_missing_snapshot_exits_2(self, tmp_path, capsys):
        self._expect_resume_error(tmp_path / "absent.snap", capsys,
                                  "cannot read snapshot")

    def test_wrong_payload_shape_exits_2(self, tmp_path, capsys):
        from repro.checkpoint import write_snapshot

        snap = tmp_path / "odd.snap"
        write_snapshot(str(snap), {"kind": "run-ledger", "command": "faults",
                                   "argv": "not-a-list", "units": {}})
        self._expect_resume_error(snap, capsys, "argv/unit ledger")


class TestTraceCLI:
    def _load_trace(self, path):
        import json

        with open(path) as fh:
            return json.load(fh)

    def test_trace_command_writes_valid_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main(["trace", "fig5", "--trace-out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "IMB SendRecv" in captured.out
        assert f"trace: wrote {out}" in captured.err
        doc = self._load_trace(out)
        assert doc["traceEvents"]
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "i", "M")
        # attributed deltas sum exactly to the run's counter totals
        totals = doc["otherData"]["counter_totals"]
        summed = {}
        for ev in doc["traceEvents"]:
            for k, v in ev.get("args", {}).get("counters", {}).items():
                summed[k] = summed.get(k, 0) + v
        assert summed == totals

    def test_trace_flag_prints_phase_table(self, capsys):
        assert main(["fig5", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "(total)" in out and "phase" in out

    def test_trace_out_creates_parent_dirs(self, tmp_path):
        out = tmp_path / "a" / "b" / "t.json"
        assert main(["trace", "fig5", "--trace-out", str(out)]) == 0
        assert out.exists()

    def test_checkpoint_dir_is_created(self, tmp_path):
        ckdir = tmp_path / "deep" / "ck"
        assert main(["faults", "--checkpoint-every", "0",
                     "--checkpoint-dir", str(ckdir)]) == 0
        assert (ckdir / "latest.snap").exists()

    def test_unwritable_trace_out_exits_2(self, tmp_path, capsys):
        # a regular file as a parent path component is unwritable even
        # for root (NotADirectoryError), unlike mode-0 dirs
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        bad = blocker / "sub" / "t.json"
        with pytest.raises(SystemExit) as exc:
            main(["trace", "fig5", "--trace-out", str(bad)])
        assert exc.value.code == 2
        assert "--trace-out" in capsys.readouterr().err

    def test_unwritable_checkpoint_dir_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        bad = blocker / "sub" / "ck"
        with pytest.raises(SystemExit) as exc:
            main(["fig5", "--checkpoint-every", "0",
                  "--checkpoint-dir", str(bad)])
        assert exc.value.code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_traced_run_resumes_byte_identical(self, tmp_path, capsys):
        ckdir = tmp_path / "ck"
        out = tmp_path / "t.json"
        assert main(["trace", "faults", "--trace-out", str(out),
                     "--fault-seed", "7", "--checkpoint-every", "0",
                     "--checkpoint-dir", str(ckdir)]) == 0
        first_stdout = capsys.readouterr().out
        first_trace = out.read_bytes()
        # resume replays the snapshot's own argv, rewriting the same
        # trace file: both it and stdout must come out byte-identical
        assert main(["resume", str(ckdir / "latest.snap")]) == 0
        assert capsys.readouterr().out == first_stdout
        assert out.read_bytes() == first_trace


# --- the exit-code contract ------------------------------------------------
#
# 0 = clean run, 2 = bad spec / failed preflight, 3 = sanitizer
# violation.  One table, every entry exercised through main() the same
# way, so a driver can't quietly drift to its own convention.

def _clean_fig5(tmp_path):
    return ["fig5"]


def _clean_fig6(tmp_path):
    return ["fig6", "--class", "W"]


def _clean_nas(tmp_path):
    return ["sanitize", "nas", "--class", "W"]


def _clean_faults(tmp_path):
    return ["faults", "--fault-plan", "link_loss=0.02", "--fault-seed", "7"]


def _clean_sanitize(tmp_path):
    return ["sanitize", "faults"]


def _clean_resume(tmp_path):
    ckdir = tmp_path / "ck"
    assert main(["faults", "--checkpoint-every", "0",
                 "--checkpoint-dir", str(ckdir)]) == 0
    return ["resume", str(ckdir / "latest.snap")]


def _clean_batch(tmp_path):
    spec = tmp_path / "spec.json"
    spec.write_text('[{"command": "fig4"}]')
    return ["batch", str(spec), "--out-dir", str(tmp_path / "out"),
            "--jobs", "1"]


def _bad_fig5(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("")
    return ["fig5", "--checkpoint-every", "0",
            "--checkpoint-dir", str(blocker / "ck")]


def _bad_fig6(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("")
    return ["fig6", "--class", "W", "--trace-out",
            str(blocker / "t.json")]


def _bad_nas(tmp_path):
    return ["sanitize", "nas", "--sanitize", "bogus-group"]


def _bad_faults(tmp_path):
    return ["faults", "--fault-plan", "link_sloth=0.5"]


def _bad_sanitize(tmp_path):
    return ["sanitize", "faults", "--sanitize", "bogus-group"]


def _bad_resume(tmp_path):
    snap = tmp_path / "bogus.snap"
    snap.write_text("not a snapshot")
    return ["resume", str(snap)]


def _bad_batch(tmp_path):
    spec = tmp_path / "spec.json"
    spec.write_text('[{"command": "no-such-driver"}]')
    return ["batch", str(spec), "--out-dir", str(tmp_path / "out")]


def _clean_lint(tmp_path):
    mod = tmp_path / "spotless.py"
    mod.write_text("def double(ticks):\n    return ticks * 2\n")
    return ["lint", str(mod)]


def _bad_lint(tmp_path):
    return ["lint", str(tmp_path / "no-such-tree")]


_CONTRACT = [
    ("fig5", _clean_fig5, _bad_fig5),
    ("fig6", _clean_fig6, _bad_fig6),
    ("nas", _clean_nas, _bad_nas),
    ("faults", _clean_faults, _bad_faults),
    ("sanitize", _clean_sanitize, _bad_sanitize),
    ("resume", _clean_resume, _bad_resume),
    ("batch", _clean_batch, _bad_batch),
    ("lint", _clean_lint, _bad_lint),
]


class TestExitCodeContract:
    @pytest.mark.parametrize("name,clean,_bad", _CONTRACT,
                             ids=[c[0] for c in _CONTRACT])
    def test_clean_run_exits_0(self, name, clean, _bad, tmp_path, capsys):
        assert main(clean(tmp_path)) == 0

    @pytest.mark.parametrize("name,_clean,bad", _CONTRACT,
                             ids=[c[0] for c in _CONTRACT])
    def test_bad_spec_exits_2(self, name, _clean, bad, tmp_path, capsys):
        argv = bad(tmp_path)
        capsys.readouterr()
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("target", ["fig5", "fig6", "nas", "faults"])
    def test_sanitizer_violation_exits_3(self, target, monkeypatch, capsys):
        from repro import cli, sanitize

        resolved = "fig6" if target == "nas" else target

        def violate(args):
            raise sanitize.SanitizerError(
                "heap.use-after-free", "synthetic violation for the "
                "exit-code contract", address=0x1000, tick=1)

        monkeypatch.setitem(cli.COMMANDS, resolved,
                            (violate, cli.COMMANDS[resolved][1]))
        with pytest.raises(SystemExit) as exc:
            main(["sanitize", target])
        assert exc.value.code == 3
        err = capsys.readouterr().err
        assert "sanitize[heap.use-after-free]" in err
        assert "Traceback" not in err

    def test_lint_findings_exit_1(self, tmp_path, capsys):
        mod = tmp_path / "wallclock.py"
        mod.write_text("import time\n\ndef now():\n    return time.time()\n")
        with pytest.raises(SystemExit) as exc:
            main(["lint", str(mod)])
        assert exc.value.code == 1
        assert "wallclock" in capsys.readouterr().out
