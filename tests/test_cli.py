"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig5" in capsys.readouterr().out

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_breakdown(self, capsys):
        assert main(["breakdown", "--mb", "1"]) == 0
        out = capsys.readouterr().out
        assert "message breakdown" in out
        assert "4K cold" in out and "2M cached" in out

    def test_registration(self, capsys):
        assert main(["registration"]) == 0
        out = capsys.readouterr().out
        assert "Registration cost" in out
        # the "down to 1 %" row is present for the largest size
        assert "65536" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig 3" in out
        assert "only three times higher" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "offset" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "IMB SendRecv" in out
        assert "hugepages" in out

    def test_xeon(self, capsys):
        assert main(["xeon"]) == 0
        assert "driver patch" in capsys.readouterr().out

    def test_abinit(self, capsys):
        assert main(["abinit"]) == 0
        out = capsys.readouterr().out
        assert "allocator speedup" in out

    def test_pingpong(self, capsys):
        assert main(["pingpong"]) == 0
        assert "PingPong" in capsys.readouterr().out

    def test_fig6_class_w(self, capsys):
        assert main(["fig6", "--class", "W"]) == 0
        out = capsys.readouterr().out
        for kernel in ("CG", "EP", "IS", "LU", "MG"):
            assert kernel in out

    def test_tlb_class_w(self, capsys):
        assert main(["tlb", "--class", "W"]) == 0
        assert "TLB misses" in capsys.readouterr().out
