"""Tests for machines, presets and clusters."""

import pytest

from repro.engine import SimKernel
from repro.systems import Cluster, Machine, connect_hcas, presets

MB = 1024 * 1024


class TestPresets:
    def test_all_presets_construct(self):
        for name, factory in presets.ALL_PRESETS.items():
            spec = factory()
            machine = Machine(SimKernel(), spec)
            assert machine.name == name

    def test_paper_quoted_opteron_tlb(self):
        """§2 quotes the Opteron's 544 vs 8 TLB entries explicitly."""
        spec = presets.opteron_infinihost_pcie()
        assert spec.tlb.entries_4k == 544
        assert spec.tlb.entries_2m == 8

    def test_system_p_timebase(self):
        """1.65 GHz / 8 = 206.25 ticks/us (the paper's TBR unit)."""
        assert presets.systemp_ehca().ticks_per_us == pytest.approx(206.25)

    def test_bus_assignment(self):
        assert presets.opteron_infinihost_pcie().bus.name == "PCIe-x8"
        assert presets.xeon_infinihost_pcix().bus.name == "PCI-X-133"
        assert presets.systemp_ehca().bus.name == "GX"

    def test_xeon_defaults_to_stock_driver(self):
        """The Xeon experiment's baseline is the unmodified OpenIB."""
        assert not presets.xeon_infinihost_pcix().hugepage_aware_driver

    def test_with_driver_copies(self):
        spec = presets.xeon_infinihost_pcix()
        patched = spec.with_driver(True)
        assert patched.hugepage_aware_driver
        assert not spec.hugepage_aware_driver


class TestMachine:
    def test_components_wired(self):
        machine = Machine(SimKernel(), presets.opteron_infinihost_pcie())
        assert machine.hca.att is machine.att
        assert machine.hca.bus is machine.bus
        assert machine.reg_engine.driver is machine.driver
        assert machine.hugetlbfs.physical is machine.physical

    def test_processes_share_machine_memory(self):
        machine = Machine(SimKernel(), presets.opteron_infinihost_pcie())
        p1 = machine.new_process()
        p2 = machine.new_process()
        before = machine.physical.free_small_frames
        p1.aspace.mmap(MB)
        assert machine.physical.free_small_frames < before
        assert p2.aspace.physical is machine.physical
        assert machine.processes == [p1, p2]

    def test_process_allocator_stack(self):
        machine = Machine(SimKernel(), presets.opteron_infinihost_pcie())
        proc = machine.new_process()
        assert proc.allocator is proc.libc
        p = proc.malloc(100)
        proc.free(p)

    def test_destroy_releases(self):
        machine = Machine(SimKernel(), presets.opteron_infinihost_pcie())
        proc = machine.new_process()
        before = machine.physical.free_small_frames
        proc.malloc(64 * 1024)
        proc.destroy()
        assert machine.physical.free_small_frames == before


class TestCluster:
    def test_nodes_share_kernel(self):
        cluster = Cluster(presets.opteron_infinihost_pcie(), 3)
        assert len(cluster.nodes) == 3
        assert all(n.kernel is cluster.kernel for n in cluster.nodes)

    def test_full_mesh_wiring(self):
        cluster = Cluster(presets.opteron_infinihost_pcie(), 3)
        assert len(cluster.wires) == 3  # 3 choose 2
        # every pair can route
        for i in range(3):
            for j in range(3):
                if i != j:
                    cluster.nodes[i].hca.wire_to(cluster.nodes[j].hca)

    def test_needs_one_node(self):
        with pytest.raises(ValueError):
            Cluster(presets.opteron_infinihost_pcie(), 0)

    def test_aggregate_counters(self):
        cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
        proc = cluster.nodes[0].new_process()
        proc.malloc(100)
        agg = cluster.aggregate_counters()
        assert agg.get("alloc.libc.malloc", 0) == 1
