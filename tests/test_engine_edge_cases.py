"""Engine edge cases: interrupts interacting with resources and stores."""

import pytest

from repro.engine import Interrupt, Resource, SimError, SimKernel, Store


@pytest.fixture
def kernel():
    return SimKernel()


class TestInterruptWithResources:
    def test_interrupted_waiter_releases_nothing(self, kernel):
        """A process interrupted while *waiting* for a resource never
        held a slot, so the holder's release must not double-free."""
        res = Resource(kernel, capacity=1)
        log = []

        def holder():
            yield res.request()
            yield kernel.timeout(100)
            res.release()
            log.append(("released", kernel.now))

        def waiter():
            try:
                yield res.request()
                log.append(("acquired", kernel.now))
                res.release()
            except Interrupt:
                log.append(("interrupted", kernel.now))

        kernel.process(holder())
        w = kernel.process(waiter())

        def interrupter():
            yield kernel.timeout(50)
            w.interrupt("go away")

        kernel.process(interrupter())
        kernel.run()
        assert ("interrupted", 50) in log
        assert ("released", 100) in log
        assert res.in_use == 0

    def test_interrupt_mid_timeout_preserves_clock(self, kernel):
        def sleeper():
            try:
                yield kernel.timeout(1000)
            except Interrupt:
                return kernel.now

        p = kernel.process(sleeper())

        def interrupter():
            yield kernel.timeout(123)
            p.interrupt()

        kernel.process(interrupter())
        kernel.run()
        assert p.value == 123

    def test_double_interrupt_second_wins_error(self, kernel):
        def quick():
            try:
                yield kernel.timeout(10)
            except Interrupt:
                return "caught"

        p = kernel.process(quick())

        def interrupter():
            yield kernel.timeout(1)
            p.interrupt()

        kernel.process(interrupter())
        kernel.run()
        assert p.value == "caught"
        with pytest.raises(SimError):
            p.interrupt()


class TestStoreEdgeCases:
    def test_many_getters_fifo(self, kernel):
        store = Store(kernel)
        order = []

        def getter(name):
            item = yield store.get()
            order.append((name, item))

        for name in "abc":
            kernel.process(getter(name))
        kernel.run()
        for item in (1, 2, 3):
            store.put(item)
        kernel.run()
        assert order == [("a", 1), ("b", 2), ("c", 3)]

    def test_put_event_value_none(self, kernel):
        store = Store(kernel)
        ev = store.put("x")
        assert ev.triggered and ev.ok

    def test_capacity_chain_drains_in_order(self, kernel):
        store = Store(kernel, capacity=1)
        events = [store.put(i) for i in range(4)]
        assert [e.triggered for e in events] == [True, False, False, False]
        drained = []

        def consumer():
            for _ in range(4):
                item = yield store.get()
                drained.append(item)

        kernel.process(consumer())
        kernel.run()
        assert drained == [0, 1, 2, 3]
        assert all(e.triggered for e in events)


class TestRunSemantics:
    def test_run_twice_continues(self, kernel):
        hits = []

        def beeper():
            for _ in range(3):
                yield kernel.timeout(10)
                hits.append(kernel.now)

        kernel.process(beeper())
        kernel.run(until=15)
        assert hits == [10]
        kernel.run()
        assert hits == [10, 20, 30]

    def test_peek(self, kernel):
        assert kernel.peek() is None
        kernel.timeout(42)
        assert kernel.peek() == 42

    def test_step_on_empty_queue(self, kernel):
        with pytest.raises(SimError):
            kernel.step()
