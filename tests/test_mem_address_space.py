"""Unit tests for address spaces (repro.mem.address_space)."""

import pytest

from repro.mem import (
    AddressSpace,
    HugePagePoolExhausted,
    HugeTLBfs,
    MappingError,
    PAGE_2M,
    PAGE_4K,
    PhysicalMemory,
)
from repro.mem.address_space import BRK_BASE

MB = 1024 * 1024


@pytest.fixture
def machine_mem():
    pm = PhysicalMemory(256 * MB, hugepages=16)
    fs = HugeTLBfs(pm)
    return pm, fs


@pytest.fixture
def aspace(machine_mem):
    pm, fs = machine_mem
    return AddressSpace(pm, fs)


class TestMmap4K:
    def test_basic_mapping(self, aspace):
        vma = aspace.mmap(10 * PAGE_4K)
        assert vma.length == 10 * PAGE_4K
        assert vma.page_size == PAGE_4K
        for off in range(0, vma.length, PAGE_4K):
            paddr, size = aspace.translate(vma.start + off)
            assert size == PAGE_4K

    def test_length_rounded_up(self, aspace):
        vma = aspace.mmap(100)
        assert vma.length == PAGE_4K

    def test_zero_length_rejected(self, aspace):
        with pytest.raises(MappingError):
            aspace.mmap(0)

    def test_mappings_dont_overlap(self, aspace):
        a = aspace.mmap(4 * PAGE_4K)
        b = aspace.mmap(4 * PAGE_4K)
        assert b.end <= a.start or a.end <= b.start

    def test_frames_returned_on_munmap(self, aspace, machine_mem):
        pm, _ = machine_mem
        before = pm.free_small_frames
        vma = aspace.mmap(8 * PAGE_4K)
        assert pm.free_small_frames == before - 8
        aspace.munmap(vma.start)
        assert pm.free_small_frames == before

    def test_munmap_unknown_rejected(self, aspace):
        with pytest.raises(MappingError):
            aspace.munmap(0xDEAD000)

    def test_translate_after_munmap_faults(self, aspace):
        from repro.mem.paging import TranslationFault

        vma = aspace.mmap(PAGE_4K)
        aspace.munmap(vma.start)
        with pytest.raises(TranslationFault):
            aspace.translate(vma.start)


class TestMmapHuge:
    def test_basic_huge_mapping(self, aspace, machine_mem):
        _, fs = machine_mem
        vma = aspace.mmap(4 * MB, page_size=PAGE_2M)
        assert vma.page_size == PAGE_2M
        assert vma.length == 4 * MB
        assert fs.free_pages == 14
        paddr, size = aspace.translate(vma.start + 3 * MB)
        assert size == PAGE_2M

    def test_huge_rounding(self, aspace):
        vma = aspace.mmap(1, page_size=PAGE_2M)
        assert vma.length == PAGE_2M

    def test_huge_alignment(self, aspace):
        vma = aspace.mmap(PAGE_2M, page_size=PAGE_2M)
        assert vma.start % PAGE_2M == 0

    def test_reserve_respected(self, aspace, machine_mem):
        _, fs = machine_mem
        with pytest.raises(HugePagePoolExhausted):
            aspace.mmap(16 * PAGE_2M, page_size=PAGE_2M, keep_hugepage_reserve=1)
        # without reserve it fits exactly
        vma = aspace.mmap(16 * PAGE_2M, page_size=PAGE_2M)
        assert fs.free_pages == 0
        aspace.munmap(vma.start)
        assert fs.free_pages == 16

    def test_no_hugetlbfs(self, machine_mem):
        pm, _ = machine_mem
        aspace = AddressSpace(pm, hugetlbfs=None)
        with pytest.raises(MappingError):
            aspace.mmap(PAGE_2M, page_size=PAGE_2M)

    def test_unsupported_page_size(self, aspace):
        with pytest.raises(MappingError):
            aspace.mmap(PAGE_4K, page_size=8192)


class TestBrk:
    def test_sbrk_grows(self, aspace):
        old = aspace.sbrk(100)
        assert old == BRK_BASE
        assert aspace.brk == BRK_BASE + 100
        # the partial page is mapped
        paddr, _ = aspace.translate(BRK_BASE + 50)
        assert paddr >= 0

    def test_sbrk_returns_previous_break(self, aspace):
        aspace.sbrk(1000)
        old = aspace.sbrk(500)
        assert old == BRK_BASE + 1000

    def test_sbrk_shrink_frees_frames(self, aspace, machine_mem):
        pm, _ = machine_mem
        before = pm.free_small_frames
        aspace.sbrk(10 * PAGE_4K)
        assert pm.free_small_frames == before - 10
        aspace.sbrk(-10 * PAGE_4K)
        assert pm.free_small_frames == before

    def test_sbrk_below_base_rejected(self, aspace):
        with pytest.raises(MappingError):
            aspace.sbrk(-1)

    def test_brk_vma_tracked(self, aspace):
        aspace.sbrk(PAGE_4K * 3)
        vma = aspace.find_vma(BRK_BASE)
        assert vma is not None
        assert vma.kind == "brk"
        assert vma.length == 3 * PAGE_4K


class TestLifecycle:
    def test_destroy_releases_everything(self, aspace, machine_mem):
        pm, fs = machine_mem
        small_before = pm.free_small_frames
        huge_before = fs.free_pages
        aspace.mmap(8 * PAGE_4K)
        aspace.mmap(2 * PAGE_2M, page_size=PAGE_2M)
        aspace.sbrk(5 * PAGE_4K)
        aspace.destroy()
        assert pm.free_small_frames == small_before
        assert fs.free_pages == huge_before
        assert aspace.vmas == []

    def test_find_vma(self, aspace):
        vma = aspace.mmap(PAGE_4K)
        assert aspace.find_vma(vma.start) is vma
        assert aspace.find_vma(vma.start + PAGE_4K) is not vma
