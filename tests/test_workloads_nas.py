"""Tests for the mini NAS kernels (functional verification + Fig 6 shape).

The class-W comparisons are module-scoped fixtures: each kernel runs
twice (small pages / preloaded hugepage library) on fresh clusters.
"""

import pytest

from repro.systems import presets
from repro.workloads.nas import KERNELS
from repro.workloads.nas.common import compare_hugepages, run_nas


@pytest.fixture(scope="module")
def fig6():
    return {
        name: compare_hugepages(prog, presets.opteron_infinihost_pcie(), klass="W")
        for name, prog in KERNELS.items()
    }


class TestFunctionalVerification:
    """Every kernel really computes: results checked against references."""

    @pytest.mark.parametrize("name", list(KERNELS))
    def test_verified_small_pages(self, fig6, name):
        assert fig6[name].small.verified

    @pytest.mark.parametrize("name", list(KERNELS))
    def test_verified_hugepages(self, fig6, name):
        assert fig6[name].huge.verified

    def test_cg_converges(self):
        r = run_nas(KERNELS["CG"], presets.opteron_infinihost_pcie(),
                    hugepages=False, klass="W")
        assert r.verified

    def test_results_deterministic(self):
        a = run_nas(KERNELS["EP"], presets.opteron_infinihost_pcie(),
                    hugepages=False, klass="W")
        b = run_nas(KERNELS["EP"], presets.opteron_infinihost_pcie(),
                    hugepages=False, klass="W")
        assert a.total_ticks == b.total_ticks
        assert a.comm_ticks == b.comm_ticks


class TestFig6Shape:
    """The paper's Fig 6 claims, as ordering/threshold constraints."""

    def test_comm_improvement_over_8pct_except_mg_is(self, fig6):
        """'Except for MG and IS, all benchmarks show communication
        performance benefits of more than 8 %.'"""
        for name in ("CG", "EP", "LU"):
            assert fig6[name].comm_improvement_pct > 8.0, name
        for name in ("MG", "IS"):
            assert fig6[name].comm_improvement_pct < 8.0, name

    def test_all_benefit_overall_except_is(self, fig6):
        """'Overall, all benchmarks benefited from using hugepages -
        except for IS.'"""
        for name in ("CG", "EP", "LU", "MG"):
            assert fig6[name].overall_improvement_pct > 0.0, name
        assert fig6["IS"].overall_improvement_pct < 0.0

    def test_best_case_over_10pct(self, fig6):
        """'The results show time improvements of more than 10 %.'"""
        assert max(c.overall_improvement_pct for c in fig6.values()) > 10.0

    def test_is_computation_hurt_by_hugepages(self, fig6):
        """IS's bucket scatter loses page colouring on hugepages."""
        assert fig6["IS"].other_improvement_pct < 0.0


class TestTLBMisses:
    """§5.2: 'TLB misses increased dramatically with hugepages (up to
    eight times with EP) except for LU.'"""

    def test_misses_increase_except_lu(self, fig6):
        for name in ("CG", "EP", "IS", "MG"):
            assert fig6[name].tlb_miss_ratio > 1.0, name
        assert fig6["LU"].tlb_miss_ratio <= 1.0

    def test_ep_worst_and_bounded(self, fig6):
        assert 4.0 < fig6["EP"].tlb_miss_ratio < 9.0

    def test_extra_misses_do_not_dominate_runtime(self, fig6):
        """'TLB misses are not responsible for less application time' —
        EP gets faster despite the inflated miss count."""
        assert fig6["EP"].other_improvement_pct > 0.0


class TestRegistrationCacheBehaviour:
    def test_hugepage_runs_keep_cache_warm(self, fig6):
        """The library never unmaps on free, so cached registrations
        survive the workspace churn; libc's munmap invalidates them."""
        cg = fig6["CG"]
        assert cg.huge.regcache_misses < cg.small.regcache_misses

    def test_runner_rejects_unverified(self):
        def broken(comm, klass="W"):
            return {"verified": False}
            yield

        broken.kernel_name = "BROKEN"
        with pytest.raises(RuntimeError, match="verification failed"):
            compare_hugepages(broken, presets.opteron_infinihost_pcie())
