"""End-to-end determinism: identical runs produce identical results.

The shape assertions in benchmarks/ are only meaningful if the simulator
is bit-stable; these tests pin that property at the highest level.
"""

import pytest

from repro.engine import SimKernel
from repro.engine.resources import Store
from repro.systems import presets
from repro.workloads.imb import SendRecvBenchmark
from repro.workloads.nas import KERNELS
from repro.workloads.nas.common import run_nas
from repro.workloads.verbs_micro import measure_send

KB = 1024
MB = 1024 * 1024


class TestDeterminism:
    def test_imb_sweep_identical_across_runs(self):
        bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
        a = bench.run([64 * KB, 1 * MB], hugepages=True, lazy_dereg=False)
        b = bench.run([64 * KB, 1 * MB], hugepages=True, lazy_dereg=False)
        assert [r.ticks_per_iter for r in a.rows] == \
            [r.ticks_per_iter for r in b.rows]

    def test_verbs_measure_identical(self):
        a = measure_send(sges=4, sge_size=128, offset=32)
        b = measure_send(sges=4, sge_size=128, offset=32)
        assert (a.post_ticks, a.poll_ticks) == (b.post_ticks, b.poll_ticks)

    def test_nas_run_identical(self):
        a = run_nas(KERNELS["MG"], presets.opteron_infinihost_pcie(),
                    hugepages=True, klass="W")
        b = run_nas(KERNELS["MG"], presets.opteron_infinihost_pcie(),
                    hugepages=True, klass="W")
        assert a.total_ticks == b.total_ticks
        assert a.tlb_misses_2m == b.tlb_misses_2m
        assert a.regcache_misses == b.regcache_misses


class TestStoreTryGet:
    def test_try_get_nonblocking(self):
        k = SimKernel()
        store = Store(k)
        assert store.try_get() is None
        store.put("x")
        assert store.try_get() == "x"
        assert store.try_get() is None

    def test_try_get_defers_to_waiting_getters(self):
        k = SimKernel()
        store = Store(k)
        got = []

        def waiter():
            item = yield store.get()
            got.append(item)

        k.process(waiter())
        k.run()
        # a parked getter has priority over a poller
        assert store.try_get() is None
        store.put("y")
        k.run()
        assert got == ["y"]

    def test_try_get_unblocks_putters(self):
        k = SimKernel()
        store = Store(k, capacity=1)
        store.put("a")
        ev = store.put("b")  # blocked on capacity
        assert not ev.triggered
        assert store.try_get() == "a"
        assert ev.triggered
        assert store.items == ("b",)
