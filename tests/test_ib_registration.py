"""Tests for memory registration (repro.ib.registration + driver)."""

import pytest

from repro.ib.att import ATTCache, ATTConfig
from repro.ib.driver import OpenIBDriver
from repro.ib.registration import RegistrationCosts, RegistrationEngine
from repro.ib.verbs import IBVerbsError, ProtectionDomain
from repro.mem import AddressSpace, HugeTLBfs, PAGE_2M, PAGE_4K, PhysicalMemory

MB = 1024 * 1024


@pytest.fixture
def aspace():
    pm = PhysicalMemory(1024 * MB, hugepages=64)
    return AddressSpace(pm, HugeTLBfs(pm))


def make_engine(hugepage_aware: bool):
    att = ATTCache(ATTConfig())
    return RegistrationEngine(OpenIBDriver(hugepage_aware), att), att


class TestDriverPlanning:
    def test_stock_driver_expands_hugepages(self, aspace):
        """'The OpenIB stack is not able to detect hugepages as the
        kernel pretends 4 KB pages instead' (§5)."""
        driver = OpenIBDriver(hugepage_aware=False)
        vma = aspace.mmap(4 * MB, page_size=PAGE_2M)
        pages = list(aspace.page_table.pages_in_range(vma.start, 4 * MB))
        size, n = driver.plan_entries(pages)
        assert size == PAGE_4K
        assert n == 1024

    def test_patched_driver_uses_hugepage_entries(self, aspace):
        driver = OpenIBDriver(hugepage_aware=True)
        vma = aspace.mmap(4 * MB, page_size=PAGE_2M)
        pages = list(aspace.page_table.pages_in_range(vma.start, 4 * MB))
        size, n = driver.plan_entries(pages)
        assert size == PAGE_2M
        assert n == 2

    def test_mixed_range_falls_back(self, aspace):
        driver = OpenIBDriver(hugepage_aware=True)
        small = aspace.mmap(2 * PAGE_4K)
        pages = list(aspace.page_table.pages_in_range(small.start, 2 * PAGE_4K))
        size, n = driver.plan_entries(pages)
        assert size == PAGE_4K and n == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            OpenIBDriver().plan_entries([])


class TestRegistration:
    def test_three_steps_pin_pages(self, aspace):
        engine, _ = make_engine(True)
        vma = aspace.mmap(8 * PAGE_4K)
        mr, ns = engine.register(aspace, ProtectionDomain.fresh(), vma.start,
                                 8 * PAGE_4K)
        assert ns > 0
        for entry in aspace.page_table.pages_in_range(vma.start, 8 * PAGE_4K):
            assert entry.pin_count == 1

    def test_pinned_pages_block_munmap(self, aspace):
        engine, _ = make_engine(True)
        vma = aspace.mmap(PAGE_4K)
        engine.register(aspace, ProtectionDomain.fresh(), vma.start, PAGE_4K)
        with pytest.raises(ValueError):
            aspace.munmap(vma.start)

    def test_deregister_unpins(self, aspace):
        engine, _ = make_engine(True)
        vma = aspace.mmap(PAGE_4K)
        mr, _ = engine.register(aspace, ProtectionDomain.fresh(), vma.start, PAGE_4K)
        engine.deregister(aspace, mr)
        aspace.munmap(vma.start)  # now allowed

    def test_double_deregister_rejected(self, aspace):
        engine, _ = make_engine(True)
        vma = aspace.mmap(PAGE_4K)
        mr, _ = engine.register(aspace, ProtectionDomain.fresh(), vma.start, PAGE_4K)
        engine.deregister(aspace, mr)
        with pytest.raises(IBVerbsError):
            engine.deregister(aspace, mr)

    def test_invalid_length(self, aspace):
        engine, _ = make_engine(True)
        with pytest.raises(IBVerbsError):
            engine.register(aspace, ProtectionDomain.fresh(), 0x1000, 0)

    def test_dereg_invalidates_att(self, aspace):
        engine, att = make_engine(True)
        vma = aspace.mmap(PAGE_4K)
        mr, _ = engine.register(aspace, ProtectionDomain.fresh(), vma.start, PAGE_4K)
        att.access(mr.mr_id, 0)
        engine.deregister(aspace, mr)
        assert att.resident == 0


class TestRegistrationCostShape:
    """The §5.1 headline: hugepage registration "down to 1 % of the time
    as with small pages" for large buffers."""

    def test_cost_scales_with_pages(self, aspace):
        engine, _ = make_engine(True)
        pd = ProtectionDomain.fresh()
        a = aspace.mmap(1 * MB)
        b = aspace.mmap(8 * MB)
        _, ns_a = engine.register(aspace, pd, a.start, 1 * MB)
        _, ns_b = engine.register(aspace, pd, b.start, 8 * MB)
        assert ns_b > 4 * ns_a

    def test_hugepage_registration_near_one_percent(self, aspace):
        engine, _ = make_engine(True)
        pd = ProtectionDomain.fresh()
        small = aspace.mmap(16 * MB, page_size=PAGE_4K)
        huge = aspace.mmap(16 * MB, page_size=PAGE_2M)
        _, ns_small = engine.register(aspace, pd, small.start, 16 * MB)
        _, ns_huge = engine.register(aspace, pd, huge.start, 16 * MB)
        ratio = ns_huge / ns_small
        assert ratio < 0.03  # "down to 1 %" for large buffers

    def test_unaware_driver_keeps_upload_cost(self, aspace):
        """Without the paper's patch, hugepage buffers still upload 4 KB
        entries — registration stays cheaper (pinning) but not 100x."""
        aware, _ = make_engine(True)
        stock, _ = make_engine(False)
        pd = ProtectionDomain.fresh()
        a = aspace.mmap(16 * MB, page_size=PAGE_2M)
        b = aspace.mmap(16 * MB, page_size=PAGE_2M)
        _, ns_aware = aware.register(aspace, pd, a.start, 16 * MB)
        _, ns_stock = stock.register(aspace, pd, b.start, 16 * MB)
        assert ns_stock > 3 * ns_aware

    def test_era_magnitude(self, aspace):
        """~90 us/MB on base pages (the Mietke et al. measurements)."""
        engine, _ = make_engine(True)
        vma = aspace.mmap(4 * MB)
        _, ns = engine.register(aspace, ProtectionDomain.fresh(), vma.start, 4 * MB)
        us_per_mb = ns / 1000.0 / 4
        assert 40 < us_per_mb < 200

    def test_counters(self, aspace):
        engine, _ = make_engine(True)
        vma = aspace.mmap(4 * PAGE_4K)
        mr, _ = engine.register(aspace, ProtectionDomain.fresh(), vma.start,
                                4 * PAGE_4K)
        assert engine.counters["reg.register"] == 1
        assert engine.counters["reg.entries_uploaded"] == 4
        engine.deregister(aspace, mr)
        assert engine.counters["reg.deregister"] == 1


class TestMemoryRegionGeometry:
    def test_entries_for_range(self, aspace):
        engine, _ = make_engine(True)
        vma = aspace.mmap(4 * PAGE_4K)
        mr, _ = engine.register(aspace, ProtectionDomain.fresh(), vma.start,
                                4 * PAGE_4K)
        assert list(mr.entries_for(vma.start, PAGE_4K)) == [0]
        assert list(mr.entries_for(vma.start + PAGE_4K - 1, 2)) == [0, 1]
        assert len(list(mr.entries_for(vma.start, 4 * PAGE_4K))) == 4

    def test_contains(self, aspace):
        engine, _ = make_engine(True)
        vma = aspace.mmap(2 * PAGE_4K)
        mr, _ = engine.register(aspace, ProtectionDomain.fresh(), vma.start,
                                2 * PAGE_4K)
        assert mr.contains(vma.start, 2 * PAGE_4K)
        assert not mr.contains(vma.start, 2 * PAGE_4K + 1)

    def test_out_of_range_entry_rejected(self, aspace):
        engine, _ = make_engine(True)
        vma = aspace.mmap(PAGE_4K)
        mr, _ = engine.register(aspace, ProtectionDomain.fresh(), vma.start, PAGE_4K)
        with pytest.raises(IBVerbsError):
            mr.entry_index(vma.start - 1)
