"""Unit tests for TickClock (repro.engine.clock)."""

import pytest

from repro.engine import TickClock


class TestConversions:
    def test_ns_roundtrip(self):
        clock = TickClock(ticks_per_us=200.0)
        assert clock.ns_to_ticks(1000.0) == 200
        assert clock.ticks_to_ns(200) == 1000.0

    def test_us_to_ticks(self):
        clock = TickClock(ticks_per_us=200.0)
        assert clock.us_to_ticks(2.5) == 500

    def test_rounding_half_up(self):
        clock = TickClock(ticks_per_us=1.0)  # 1 tick per us
        assert clock.ns_to_ticks(499) == 0
        assert clock.ns_to_ticks(500) == 1
        assert clock.ns_to_ticks(1499) == 1
        assert clock.ns_to_ticks(1500) == 2

    def test_negative_rejected(self):
        clock = TickClock()
        with pytest.raises(ValueError):
            clock.ns_to_ticks(-1)
        with pytest.raises(ValueError):
            clock.ticks_to_ns(-1)


class TestBandwidth:
    def test_bandwidth_mb_s(self):
        clock = TickClock(ticks_per_us=200.0)
        # 1 MB in 1000 us => 1000 MB/s
        ticks = clock.us_to_ticks(1000.0)
        assert clock.bandwidth_mb_s(1_000_000, ticks) == pytest.approx(1000.0)

    def test_ticks_for_bandwidth_roundtrip(self):
        clock = TickClock(ticks_per_us=200.0)
        ticks = clock.ticks_for_bandwidth(1_000_000, 1000.0)
        assert clock.bandwidth_mb_s(1_000_000, ticks) == pytest.approx(1000.0, rel=1e-3)

    def test_ticks_for_bandwidth_minimum_one(self):
        clock = TickClock(ticks_per_us=200.0)
        assert clock.ticks_for_bandwidth(1, 1e9) == 1

    def test_zero_duration_rejected(self):
        clock = TickClock()
        with pytest.raises(ValueError):
            clock.bandwidth_mb_s(1024, 0)

    def test_zero_bandwidth_rejected(self):
        clock = TickClock()
        with pytest.raises(ValueError):
            clock.ticks_for_bandwidth(1024, 0.0)
