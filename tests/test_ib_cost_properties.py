"""Property-based tests on the IB cost models: monotonicity, bounds and
consistency properties that any sane hardware model must satisfy."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine import SimKernel
from repro.ib.bus import BusModel, gx_bus, pci_express_x8, pci_x_133
from repro.ib.link import IBLink, LinkConfig

BUSES = [pci_express_x8, pci_x_133, gx_bus]


def make_bus(factory):
    return BusModel(SimKernel(), factory())


class TestBusCostProperties:
    @given(
        nbytes=st.integers(min_value=1, max_value=16 * 1024 * 1024),
        extra=st.integers(min_value=1, max_value=1024 * 1024),
        paddr=st.integers(min_value=0, max_value=1 << 40),
    )
    @settings(max_examples=100, deadline=None)
    def test_dma_read_monotone_in_size(self, nbytes, extra, paddr):
        bus = make_bus(pci_express_x8)
        assert bus.dma_read_ns(paddr, nbytes) <= bus.dma_read_ns(
            paddr, nbytes + extra
        )

    @given(
        nbytes=st.integers(min_value=1, max_value=1 << 24),
        paddr=st.integers(min_value=0, max_value=1 << 40),
    )
    @settings(max_examples=100, deadline=None)
    def test_costs_positive_everywhere(self, nbytes, paddr):
        for factory in BUSES:
            bus = make_bus(factory)
            assert bus.dma_read_ns(paddr, nbytes) > 0
            assert bus.dma_write_ns(paddr, nbytes) >= 0
            assert bus.stream_ns(nbytes) > 0

    @given(nbytes=st.integers(min_value=1, max_value=1 << 24))
    @settings(max_examples=50, deadline=None)
    def test_dma_never_beats_raw_stream(self, nbytes):
        """Descriptor setup and bursts only add cost on top of the
        bandwidth floor."""
        bus = make_bus(pci_x_133)
        assert bus.dma_read_ns(0, nbytes) >= bus.stream_ns(nbytes)

    @given(
        paddr=st.integers(min_value=0, max_value=1 << 40),
        nbytes=st.integers(min_value=1, max_value=4096),
    )
    @settings(max_examples=100, deadline=None)
    def test_bursts_cover_the_range(self, paddr, nbytes):
        bus = make_bus(gx_bus)
        bursts = bus.bursts_for(paddr, nbytes)
        b = bus.config.burst_bytes
        # enough bursts to cover the span, never more than span/b + 1
        assert bursts * b >= nbytes
        assert bursts <= (nbytes + b - 1) // b + 1

    @given(offset=st.integers(min_value=0, max_value=4095))
    @settings(max_examples=200, deadline=None)
    def test_offset_profile_bounded(self, offset):
        """The Fig 4 adjustment never exceeds a fraction of a microsecond
        and never drives a DMA cost negative."""
        for factory in BUSES:
            bus = make_bus(factory)
            adj = bus.offset_adjust_ns(offset)
            assert abs(adj) < 500.0
            assert bus.dma_read_ns(offset, 8) >= 0.0

    @given(n_sges=st.integers(min_value=0, max_value=256))
    @settings(max_examples=50, deadline=None)
    def test_wqe_fetch_monotone_in_sges(self, n_sges):
        bus = make_bus(pci_express_x8)
        assert bus.wqe_fetch_ns(n_sges) <= bus.wqe_fetch_ns(n_sges + 1)


class TestLinkCostProperties:
    @given(
        nbytes=st.integers(min_value=0, max_value=1 << 25),
        extra=st.integers(min_value=1, max_value=1 << 20),
    )
    @settings(max_examples=100, deadline=None)
    def test_transfer_monotone(self, nbytes, extra):
        link = IBLink(LinkConfig())
        assert link.transfer_ns(nbytes) <= link.transfer_ns(nbytes + extra)

    @given(nbytes=st.integers(min_value=1, max_value=1 << 25))
    @settings(max_examples=100, deadline=None)
    def test_effective_bandwidth_below_rated(self, nbytes):
        link = IBLink(LinkConfig(payload_mb_s=940.0))
        ns = link.serialization_ns(nbytes)
        achieved_mb_s = nbytes / (ns / 1e9) / 1e6
        assert achieved_mb_s <= 940.0 + 1e-6

    @given(nbytes=st.integers(min_value=0, max_value=1 << 25))
    @settings(max_examples=100, deadline=None)
    def test_packets_consistent_with_mtu(self, nbytes):
        link = IBLink(LinkConfig(mtu_bytes=2048))
        packets = link.packets_for(nbytes)
        assert packets >= 1
        assert (packets - 1) * 2048 < max(1, nbytes) <= packets * 2048 or nbytes == 0


class TestRegistrationCostProperties:
    @given(
        n_pages=st.integers(min_value=1, max_value=2048),
        extra=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=60, deadline=None)
    def test_registration_monotone_in_pages(self, n_pages, extra):
        from repro.ib.registration import RegistrationCosts

        costs = RegistrationCosts()

        def total(pages):
            return (costs.base_ns
                    + pages * (costs.per_4k_pin_ns + costs.per_page_translate_ns
                               + costs.per_entry_upload_ns))

        assert total(n_pages) < total(n_pages + extra)

    def test_pin_cost_validates_page_size(self):
        from repro.ib.registration import RegistrationCosts

        with pytest.raises(ValueError):
            RegistrationCosts().pin_ns(8192)
