"""Property-based tests on the IB cost models: monotonicity, bounds and
consistency properties that any sane hardware model must satisfy."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine import SimKernel
from repro.ib.bus import BusModel, gx_bus, pci_express_x8, pci_x_133
from repro.ib.link import IBLink, LinkConfig

BUSES = [pci_express_x8, pci_x_133, gx_bus]


def make_bus(factory):
    return BusModel(SimKernel(), factory())


class TestBusCostProperties:
    @given(
        nbytes=st.integers(min_value=1, max_value=16 * 1024 * 1024),
        extra=st.integers(min_value=1, max_value=1024 * 1024),
        paddr=st.integers(min_value=0, max_value=1 << 40),
    )
    @settings(max_examples=100, deadline=None)
    def test_dma_read_monotone_in_size(self, nbytes, extra, paddr):
        bus = make_bus(pci_express_x8)
        assert bus.dma_read_ns(paddr, nbytes) <= bus.dma_read_ns(
            paddr, nbytes + extra
        )

    @given(
        nbytes=st.integers(min_value=1, max_value=1 << 24),
        paddr=st.integers(min_value=0, max_value=1 << 40),
    )
    @settings(max_examples=100, deadline=None)
    def test_costs_positive_everywhere(self, nbytes, paddr):
        for factory in BUSES:
            bus = make_bus(factory)
            assert bus.dma_read_ns(paddr, nbytes) > 0
            assert bus.dma_write_ns(paddr, nbytes) >= 0
            assert bus.stream_ns(nbytes) > 0

    @given(nbytes=st.integers(min_value=1, max_value=1 << 24))
    @settings(max_examples=50, deadline=None)
    def test_dma_never_beats_raw_stream(self, nbytes):
        """Descriptor setup and bursts only add cost on top of the
        bandwidth floor."""
        bus = make_bus(pci_x_133)
        assert bus.dma_read_ns(0, nbytes) >= bus.stream_ns(nbytes)

    @given(
        paddr=st.integers(min_value=0, max_value=1 << 40),
        nbytes=st.integers(min_value=1, max_value=4096),
    )
    @settings(max_examples=100, deadline=None)
    def test_bursts_cover_the_range(self, paddr, nbytes):
        bus = make_bus(gx_bus)
        bursts = bus.bursts_for(paddr, nbytes)
        b = bus.config.burst_bytes
        # enough bursts to cover the span, never more than span/b + 1
        assert bursts * b >= nbytes
        assert bursts <= (nbytes + b - 1) // b + 1

    @given(offset=st.integers(min_value=0, max_value=4095))
    @settings(max_examples=200, deadline=None)
    def test_offset_profile_bounded(self, offset):
        """The Fig 4 adjustment never exceeds a fraction of a microsecond
        and never drives a DMA cost negative."""
        for factory in BUSES:
            bus = make_bus(factory)
            adj = bus.offset_adjust_ns(offset)
            assert abs(adj) < 500.0
            assert bus.dma_read_ns(offset, 8) >= 0.0

    @given(n_sges=st.integers(min_value=0, max_value=256))
    @settings(max_examples=50, deadline=None)
    def test_wqe_fetch_monotone_in_sges(self, n_sges):
        bus = make_bus(pci_express_x8)
        assert bus.wqe_fetch_ns(n_sges) <= bus.wqe_fetch_ns(n_sges + 1)


class TestLinkCostProperties:
    @given(
        nbytes=st.integers(min_value=0, max_value=1 << 25),
        extra=st.integers(min_value=1, max_value=1 << 20),
    )
    @settings(max_examples=100, deadline=None)
    def test_transfer_monotone(self, nbytes, extra):
        link = IBLink(LinkConfig())
        assert link.transfer_ns(nbytes) <= link.transfer_ns(nbytes + extra)

    @given(nbytes=st.integers(min_value=1, max_value=1 << 25))
    @settings(max_examples=100, deadline=None)
    def test_effective_bandwidth_below_rated(self, nbytes):
        link = IBLink(LinkConfig(payload_mb_s=940.0))
        ns = link.serialization_ns(nbytes)
        achieved_mb_s = nbytes / (ns / 1e9) / 1e6
        assert achieved_mb_s <= 940.0 + 1e-6

    @given(nbytes=st.integers(min_value=0, max_value=1 << 25))
    @settings(max_examples=100, deadline=None)
    def test_packets_consistent_with_mtu(self, nbytes):
        link = IBLink(LinkConfig(mtu_bytes=2048))
        packets = link.packets_for(nbytes)
        assert packets >= 1
        assert (packets - 1) * 2048 < max(1, nbytes) <= packets * 2048 or nbytes == 0

    def test_zero_byte_send_is_one_header_packet(self):
        """A 0-byte send is a legal IB message: exactly one header-only
        packet, costing ``packet_ns`` on the wire — never 0 ns, and
        never a full byte's serialization smuggled in by a
        ``max(1, n)`` somewhere up the stack."""
        link = IBLink(LinkConfig())
        assert link.packets_for(0) == 1
        assert link.serialization_ns(0) == link.config.packet_ns
        assert link.transfer_ns(0) == \
            link.config.latency_ns + link.config.packet_ns
        # the same floor the RC ack pays
        assert link.transfer_ns(0) == link.ack_ns()

    @given(nbytes=st.integers(min_value=1, max_value=1 << 25))
    @settings(max_examples=100, deadline=None)
    def test_zero_is_the_serialization_floor(self, nbytes):
        """serialization_ns(0) lower-bounds every payload size (strictly:
        any payload adds at least its byte time)."""
        link = IBLink(LinkConfig())
        assert link.serialization_ns(0) < link.serialization_ns(nbytes)

    @given(nbytes=st.integers(min_value=0, max_value=1 << 25))
    @settings(max_examples=100, deadline=None)
    def test_serialization_has_per_packet_floor(self, nbytes):
        link = IBLink(LinkConfig())
        assert link.serialization_ns(nbytes) >= \
            link.packets_for(nbytes) * link.config.packet_ns

    def test_negative_byte_count_rejected(self):
        link = IBLink(LinkConfig())
        with pytest.raises(ValueError):
            link.packets_for(-1)
        with pytest.raises(ValueError):
            link.serialization_ns(-1)


class TestZeroByteMessageEndToEnd:
    """A 0-byte eager send must cost exactly the link's header-only
    packet on the wire and move zero payload bytes — identically on the
    fast and reference costing paths (the regression: a ``max(1,
    wire_bytes)`` SGE sizing charged every 0-byte send as 1 byte)."""

    def _run(self, send_bytes=None):
        from repro.mpi import MPIConfig, MPIWorld
        from repro.systems import Cluster, presets

        cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
        world = MPIWorld(cluster, ppn=1, config=MPIConfig())

        def program(comm):
            if send_bytes is None:
                return
                yield  # noqa: unreachable — makes this a generator
            other = 1 - comm.rank
            if comm.rank == 0:
                t0 = comm.kernel.now
                yield from comm.send(other, 7, send_bytes, payload="empty")
                return comm.kernel.now - t0
            payload, size, _, _ = yield from comm.recv(0, 7)
            return (payload, size)

        results = world.run(program)
        counters = cluster.aggregate_counters()
        return results, counters

    def test_zero_byte_send_delivers_and_moves_no_payload(self):
        results, counters = self._run(send_bytes=0)
        assert results[1].value == ("empty", 0)
        # relative to a run that only does the implicit world barriers,
        # the 0-byte message added no payload bytes on the wire
        _, baseline = self._run(send_bytes=None)
        assert counters.get("hca.tx_bytes", 0) == \
            baseline.get("hca.tx_bytes", 0)
        assert counters.get("hca.rx_bytes", 0) == \
            baseline.get("hca.rx_bytes", 0)

    def test_zero_byte_send_identical_without_fastpath(self):
        from repro import fastpath

        fast = self._run(send_bytes=0)
        with fastpath.forced(False):
            slow = self._run(send_bytes=0)
        assert fast[0][0].value == slow[0][0].value  # same ticks
        assert fast[1] == slow[1]  # same counters


class TestRegistrationCostProperties:
    @given(
        n_pages=st.integers(min_value=1, max_value=2048),
        extra=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=60, deadline=None)
    def test_registration_monotone_in_pages(self, n_pages, extra):
        from repro.ib.registration import RegistrationCosts

        costs = RegistrationCosts()

        def total(pages):
            return (costs.base_ns
                    + pages * (costs.per_4k_pin_ns + costs.per_page_translate_ns
                               + costs.per_entry_upload_ns))

        assert total(n_pages) < total(n_pages + extra)

    def test_pin_cost_validates_page_size(self):
        from repro.ib.registration import RegistrationCosts

        with pytest.raises(ValueError):
            RegistrationCosts().pin_ns(8192)
