"""SimSan, the shadow-state sanitizer: zero-cost when off, clean on
healthy runs, and every seeded corruption class is caught *at the
faulting operation* with the exact rule id and faulting address/key."""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import sanitize
from repro.analysis.counters import CounterSet
from repro.engine import SimKernel
from repro.ib.verbs import ProtectionDomain
from repro.mem.paging import PAGE_4K
from repro.systems import Cluster, Machine, presets
from repro.workloads.imb import SendRecvBenchmark
from repro.workloads.nas import KERNELS
from repro.workloads.nas.common import run_nas

KB = 1024
MB = 1024 * 1024


def make_machine(hugepages=64):
    machine = Machine(SimKernel(), presets.opteron_infinihost_pcie(
        hugepages=hugepages))
    return machine, machine.new_process()


def _mr_machine(length=MB):
    """A machine with one registered MR (mirrors test_audit's helper)."""
    machine, proc = make_machine()
    buf = proc.aspace.mmap(length).start
    mr, _ns = machine.reg_engine.register(
        proc.aspace, ProtectionDomain.fresh(), buf, length)
    return machine, proc, buf, mr


class TestRuleParsing:
    def test_all_aliases(self):
        for spec in (None, "", "1", "true", "yes", "on", "all"):
            assert sanitize.parse_rules(spec) == sanitize.RULE_GROUPS

    def test_subset(self):
        assert sanitize.parse_rules("heap,mr") == ("heap", "mr")
        assert sanitize.parse_rules(" tlb , counter ") == ("tlb", "counter")

    def test_unknown_group_rejected(self):
        with pytest.raises(ValueError, match="unknown sanitizer group"):
            sanitize.parse_rules("heap,bogus")

    def test_sanitizer_rejects_unknown_group(self):
        with pytest.raises(ValueError):
            sanitize.Sanitizer(groups=("nope",))


class TestZeroCostOff:
    def test_inactive_by_default(self):
        assert sanitize.active() is None
        assert sanitize._active is None

    def test_capturing_installs_and_uninstalls(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san) as got:
            assert got is san
            assert sanitize.active() is san
        assert sanitize.active() is None

    def test_uninstalled_run_records_no_checks(self):
        machine, proc = make_machine()
        addr = proc.libc.malloc(4 * KB)
        proc.engine.touch(addr, 4 * KB)
        proc.libc.free(addr)
        san = sanitize.Sanitizer()
        assert san.checks == {"heap": 0, "mr": 0, "tlb": 0, "counter": 0}


class TestCleanRuns:
    def test_malloc_touch_free_is_clean(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc = make_machine()
            addr = proc.libc.malloc(64 * KB)
            proc.engine.touch(addr, 64 * KB)
            proc.engine.stream(addr, 64 * KB)
            proc.libc.free(addr)
        assert san.checks["heap"] > 0
        assert "clean" in san.report()

    def test_fig5_small_sweep_is_clean(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
            bench.run([4 * KB, 64 * KB], hugepages=True, lazy_dereg=True,
                      iterations=2, warmup=1)
        assert san.checks["mr"] > 0

    def test_register_use_deregister_is_clean(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc, buf, mr = _mr_machine()
            machine.att.access(mr.mr_id, 0)
            machine.reg_engine.deregister(proc.aspace, mr)
        assert san.checks["mr"] >= 3


class TestHeapRules:
    def test_use_after_free_at_faulting_access(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc = make_machine()
            addr = proc.libc.malloc(4 * KB)
            proc.libc.free(addr)
            with pytest.raises(sanitize.SanitizerError) as exc:
                proc.engine.touch(addr, 64)
        assert exc.value.rule == "heap.use-after-free"
        assert exc.value.address == addr
        assert exc.value.context["op"] == "touch"

    def test_double_free(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc = make_machine()
            addr = proc.libc.malloc(4 * KB)
            proc.libc.free(addr)
            with pytest.raises(sanitize.SanitizerError) as exc:
                proc.libc.free(addr)
        assert exc.value.rule == "heap.double-free"
        assert exc.value.address == addr

    def test_out_of_bounds_reports_first_bad_byte(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc = make_machine()
            addr = proc.libc.malloc(4 * KB)
            with pytest.raises(sanitize.SanitizerError) as exc:
                proc.engine.touch(addr, 4 * KB + 512)
        assert exc.value.rule == "heap.out-of-bounds"
        assert exc.value.address == addr + 4 * KB  # first byte past the block

    def test_redzone_touch(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc = make_machine()
            addr = proc.libc.malloc(4 * KB)
            with pytest.raises(sanitize.SanitizerError) as exc:
                proc.engine.touch(addr + 4 * KB, 8)
        assert exc.value.rule == "heap.redzone-touch"
        assert exc.value.address == addr + 4 * KB

    def test_allocator_overlap(self):
        """A corrupt allocator handing out overlapping live blocks."""
        machine, proc = make_machine()

        class FakeAllocator:
            aspace = proc.aspace

            def __repr__(self):
                return "fake"

        san = sanitize.Sanitizer()
        fake = FakeAllocator()
        with sanitize.capturing(san):
            san.on_malloc(fake, 0x100000, 4 * KB)
            with pytest.raises(sanitize.SanitizerError) as exc:
                san.on_malloc(fake, 0x100800, 4 * KB)
        assert exc.value.rule == "heap.overlap"

    def test_hugepage_lib_free_reuse_is_clean(self):
        """The library's free keeps the mapping and reuses the range —
        legal, and the shadow must not flag the reuse as UAF."""
        from repro.core.library import preload_hugepage_library

        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc = make_machine(hugepages=128)
            preload_hugepage_library(proc)
            for _ in range(3):
                addr = proc.malloc(1 * MB)
                proc.engine.touch(addr, 1 * MB)
                proc.free(addr)
        assert san.checks["heap"] >= 3


class TestMRRules:
    def test_lookup_of_deregistered_lkey(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc, buf, mr = _mr_machine()
            machine.reg_engine.deregister(proc.aspace, mr)
            with pytest.raises(sanitize.SanitizerError) as exc:
                machine.hca.lookup_mr(mr.lkey)
        assert exc.value.rule == "mr.use-after-dereg"
        assert exc.value.key == mr.lkey

    def test_rkey_use_after_dereg_at_rx(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc, buf, mr = _mr_machine()
            machine.reg_engine.deregister(proc.aspace, mr)
            with pytest.raises(sanitize.SanitizerError) as exc:
                san.check_rkey(None, mr.rkey, buf, 4 * KB, "rdma_write.rx")
        assert exc.value.rule == "mr.use-after-dereg"
        assert exc.value.key == mr.rkey

    def test_duplicate_registration(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc, buf, mr = _mr_machine()
            with pytest.raises(sanitize.SanitizerError) as exc:
                machine.reg_engine.register(
                    proc.aspace, ProtectionDomain.fresh(), buf, MB)
        assert exc.value.rule == "mr.duplicate-registration"
        assert exc.value.address == buf
        assert exc.value.context["duplicate_of"] == mr.mr_id

    def test_dma_over_unpinned_page(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc, buf, mr = _mr_machine()
            entries = list(proc.aspace.page_table.pages_in_range(buf, MB))
            entries[3].pin_count = 0  # silently unpinned under the MR
            with pytest.raises(sanitize.SanitizerError) as exc:
                san.check_dma(mr, buf, MB, "post_send")
        assert exc.value.rule == "mr.unpinned-page"
        assert exc.value.address == entries[3].vaddr

    def test_att_stale_entry(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc, buf, mr = _mr_machine()
            machine.reg_engine.deregister(proc.aspace, mr)
            with pytest.raises(sanitize.SanitizerError) as exc:
                machine.att.access(mr.mr_id, 0)
        assert exc.value.rule == "att.stale-entry"

    def test_att_out_of_range(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc, buf, mr = _mr_machine()
            with pytest.raises(sanitize.SanitizerError) as exc:
                machine.att.access(mr.mr_id, mr.n_entries + 5)
        assert exc.value.rule == "att.out-of-range"


class TestTLBRules:
    def test_unmapped_range(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc = make_machine()
            vma = proc.aspace.mmap(16 * PAGE_4K)
            proc.aspace.munmap(vma.start)
            with pytest.raises(sanitize.SanitizerError) as exc:
                proc.engine.touch(vma.start, PAGE_4K)
        assert exc.value.rule == "tlb.unmapped-range"
        assert exc.value.address == vma.start

    def test_dangling_tlb_entry(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc = make_machine()
            vma = proc.aspace.mmap(64 * KB)
            proc.engine.tlb._arrays[PAGE_4K][vma.start] = True
            proc.aspace.page_table.leaf_table(PAGE_4K).pop(vma.start)
            with pytest.raises(sanitize.SanitizerError) as exc:
                proc.engine.touch(vma.start, 64)
        assert exc.value.rule == "tlb.dangling-entry"
        assert exc.value.address == vma.start

    def test_unbacked_frame(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc = make_machine()
            vma = proc.aspace.mmap(64 * KB)
            entry = proc.aspace.page_table.leaf_table(PAGE_4K)[vma.start]
            entry.paddr = proc.aspace.physical.total_bytes + PAGE_4K
            with pytest.raises(sanitize.SanitizerError) as exc:
                proc.engine.touch(vma.start, 64)
        assert exc.value.rule == "tlb.unbacked-frame"
        assert exc.value.address == vma.start

    def test_stale_cached_translation(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            machine, proc = make_machine()
            vma = proc.aspace.mmap(64 * KB)
            proc.engine.touch(vma.start, 64 * KB)  # builds the xlate cache
            leaf = proc.aspace.page_table.leaf_table(PAGE_4K)
            # swap one PTE for an equal copy: the cached view now holds a
            # dead object — exactly the desync the fast path would read
            leaf[vma.start] = copy.copy(leaf[vma.start])
            with pytest.raises(sanitize.SanitizerError) as exc:
                proc.engine.touch(vma.start, 64 * KB)
        assert exc.value.rule == "tlb.stale-translation"
        assert exc.value.address == vma.start


class TestCounterRules:
    def test_float_amount(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            counters = CounterSet()
            counters.add("tlb.4k.miss", 2)  # int is fine
            with pytest.raises(sanitize.SanitizerError) as exc:
                counters.add("tlb.4k.miss", 1.5)
        assert exc.value.rule == "counter.float-amount"
        assert exc.value.context["counter"] == "tlb.4k.miss"

    def test_float_amount_in_add_many(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            counters = CounterSet()
            with pytest.raises(sanitize.SanitizerError) as exc:
                counters.add_many([("a", 1), ("b", 0.25)])
        assert exc.value.rule == "counter.float-amount"

    def test_bool_amount_is_int(self):
        san = sanitize.Sanitizer()
        with sanitize.capturing(san):
            CounterSet().add("x", True)  # bool is an int subclass: legal


class TestGroupSelection:
    def test_disabled_group_does_not_fire(self):
        san = sanitize.Sanitizer(groups=("mr",))
        with sanitize.capturing(san):
            machine, proc = make_machine()
            addr = proc.libc.malloc(4 * KB)
            proc.libc.free(addr)
            proc.engine.touch(addr, 64)  # UAF, but heap group is off
        assert san.checks["heap"] == 0

    def test_aliased_sendrecv_found_only_with_mr_group(self):
        """The defect class SimSan actually found in this tree: aliased
        MPI_Sendrecv buffers (erroneous per the MPI standard) register
        the same range twice when the regcache is off."""
        from repro.mpi.api import MPIConfig, MPIWorld

        def run():
            cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
            world = MPIWorld(cluster, ppn=1,
                             config=MPIConfig(lazy_dereg=False))

            def program(comm):
                other = 1 - comm.rank
                buf = comm.proc.malloc(MB)
                yield from comm.sendrecv(other, 7, 256 * KB, source=other,
                                         recvtag=7, send_addr=buf,
                                         recv_addr=buf)  # aliased: illegal
                return None

            world.run(program)

        with sanitize.capturing(sanitize.Sanitizer(groups=("mr",))):
            with pytest.raises(sanitize.SanitizerError) as exc:
                run()
        assert exc.value.rule == "mr.duplicate-registration"


class TestErrorShape:
    def test_str_includes_rule_address_and_context(self):
        err = sanitize.SanitizerError(
            "heap.use-after-free", "8-byte touch inside freed block",
            address=0x1000, key=None, tick=42, context={"op": "touch"})
        text = str(err)
        assert text.startswith("sanitize[heap.use-after-free]:")
        assert "address=0x1000" in text
        assert "tick=42" in text
        assert "op=touch" in text

    def test_violation_emits_trace_instant(self):
        from repro import trace

        tracer = trace.Tracer()
        san = sanitize.Sanitizer()
        with trace.capturing(tracer), sanitize.capturing(san):
            machine, proc = make_machine()
            addr = proc.libc.malloc(4 * KB)
            proc.libc.free(addr)
            with pytest.raises(sanitize.SanitizerError):
                proc.engine.touch(addr, 64)
        events = [e for e in tracer.events
                  if e.get("name") == "sanitize.violation"]
        assert len(events) == 1
        assert events[0]["args"]["rule"] == "heap.use-after-free"


def _fig5_payload(sizes, hugepages, sanitized):
    bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
    if sanitized:
        with sanitize.capturing(sanitize.Sanitizer()):
            res = bench.run(sizes, hugepages=hugepages, lazy_dereg=True,
                            iterations=2, warmup=1)
    else:
        res = bench.run(sizes, hugepages=hugepages, lazy_dereg=True,
                        iterations=2, warmup=1)
    return [(r.size, r.ticks_per_iter, r.latency_us, r.bandwidth_mb_s)
            for r in res.rows]


class TestByteIdentity:
    """The sanitizer observes; it must never perturb a run."""

    @settings(deadline=None, max_examples=6)
    @given(size_kb=st.sampled_from([4, 64, 256]), hugepages=st.booleans())
    def test_fig5_rows_identical(self, size_kb, hugepages):
        sizes = [size_kb * KB]
        assert _fig5_payload(sizes, hugepages, sanitized=False) == \
            _fig5_payload(sizes, hugepages, sanitized=True)

    @settings(deadline=None, max_examples=2)
    @given(hugepages=st.booleans())
    def test_nas_ep_identical(self, hugepages):
        def run(sanitized):
            if sanitized:
                with sanitize.capturing(sanitize.Sanitizer()):
                    return run_nas(KERNELS["EP"],
                                   presets.opteron_infinihost_pcie(),
                                   hugepages=hugepages, klass="W", ppn=2,
                                   nas_hugepage_pool=720)
            return run_nas(KERNELS["EP"], presets.opteron_infinihost_pcie(),
                           hugepages=hugepages, klass="W", ppn=2,
                           nas_hugepage_pool=720)

        assert run(False) == run(True)
