"""Property-based tests (hypothesis) on core data structures/invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.alloc.freelist import CHUNK_SIZE, ChunkFreeList
from repro.alloc.libc import LibcAllocator
from repro.analysis import CounterSet
from repro.engine import SimKernel, TickClock
from repro.ib.att import ATTCache, ATTConfig
from repro.mem import (
    AddressSpace,
    CacheConfig,
    HugeTLBfs,
    PAGE_2M,
    PAGE_4K,
    PhysicalMemory,
    TLBConfig,
)
from repro.mem.tlb import SplitTLB

MB = 1024 * 1024

# allocator op streams: (is_malloc, size_or_index)
alloc_ops = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=1, max_value=300_000)),
    min_size=1,
    max_size=60,
)


class TestChunkFreeListProperties:
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=64)),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_under_arbitrary_ops(self, ops):
        """Sorted, aligned, non-overlapping extents; chunk conservation."""
        fl = ChunkFreeList()
        base = 0x100000
        total = 4096
        fl.insert(base, total)
        live = {}
        for do_alloc, n in ops:
            if do_alloc:
                vaddr, _ = fl.take_first_fit(n)
                if vaddr is None:
                    fl.coalesce()
                    vaddr, _ = fl.take_first_fit(n)
                if vaddr is not None:
                    live[vaddr] = n
            elif live:
                vaddr = sorted(live)[0]
                fl.insert(vaddr, live.pop(vaddr))
            assert fl.invariant_ok()
            assert fl.free_chunks + sum(live.values()) == total

    @given(sizes=st.lists(st.integers(min_value=1, max_value=32), min_size=2,
                          max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        fl = ChunkFreeList()
        fl.insert(0x100000, 2048)
        spans = []
        for n in sizes:
            vaddr, _ = fl.take_first_fit(n)
            if vaddr is None:
                continue
            spans.append((vaddr, vaddr + n * CHUNK_SIZE))
        spans.sort()
        for (a0, a1), (b0, _b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_coalesce_preserves_chunks(self, data):
        fl = ChunkFreeList()
        starts = data.draw(
            st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                     max_size=30, unique=True)
        )
        for s in starts:
            fl.insert(0x100000 + s * 4 * CHUNK_SIZE, 2)
        before = fl.free_chunks
        fl.coalesce()
        assert fl.free_chunks == before
        assert fl.invariant_ok()


class TestLibcAllocatorProperties:
    @given(ops=alloc_ops)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_no_overlap_and_balanced_accounting(self, ops):
        pm = PhysicalMemory(512 * MB, hugepages=8)
        aspace = AddressSpace(pm, HugeTLBfs(pm))
        libc = LibcAllocator(aspace)
        live = {}  # vaddr -> size
        for do_malloc, arg in ops:
            if do_malloc:
                p = libc.malloc(arg)
                # no overlap with any live allocation
                for q, qsize in live.items():
                    assert p + arg <= q or q + qsize <= p
                live[p] = arg
            elif live:
                victim = sorted(live)[arg % len(live)]
                live.pop(victim)
                libc.free(victim)
        assert libc.live_allocations == len(live)
        assert libc.stats.current_bytes == sum(live.values())
        for p in sorted(live):
            libc.free(p)
        assert libc.stats.current_bytes == 0

    @given(ops=alloc_ops)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_hugepage_library_placement_invariant(self, ops):
        """Every management-layer allocation is hugepage-backed; every
        libc-delegated one is not."""
        from repro.alloc import HugepageLibraryAllocator

        pm = PhysicalMemory(1024 * MB, hugepages=256)
        aspace = AddressSpace(pm, HugeTLBfs(pm))
        lib = HugepageLibraryAllocator(aspace)
        live = []
        for do_malloc, arg in ops:
            if do_malloc:
                p = lib.malloc(arg)
                _, page_size = aspace.translate(p)
                if arg >= lib.config.cutoff_bytes:
                    assert page_size == PAGE_2M
                else:
                    assert page_size == PAGE_4K
                live.append(p)
            elif live:
                lib.free(live.pop(arg % len(live)))


class TestTLBProperties:
    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=2000), min_size=1,
                          max_size=300),
        entries=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_resident_bounded_and_recency_hit(self, accesses, entries):
        tlb = SplitTLB(TLBConfig(entries_4k=entries, entries_2m=4))
        for page in accesses:
            tlb.access(page * PAGE_4K, PAGE_4K)
            assert tlb.resident(PAGE_4K) <= entries
        # immediately repeated access always hits
        hit, _ = tlb.access(accesses[-1] * PAGE_4K, PAGE_4K)
        assert hit

    @given(
        n=st.integers(min_value=1, max_value=100),
        region_factor=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_analytic_random_misses_bounded(self, n, region_factor):
        tlb = SplitTLB(TLBConfig())
        region = region_factor * PAGE_2M
        misses = tlb.analytic_random_misses(n, region, PAGE_4K)
        assert 0 <= misses <= n


class TestATTProperties:
    @given(
        keys=st.lists(
            st.tuples(st.integers(min_value=1, max_value=5),
                      st.integers(min_value=0, max_value=100)),
            min_size=1, max_size=300,
        ),
        entries=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_respected_and_stalls_consistent(self, keys, entries):
        att = ATTCache(ATTConfig(entries=entries, fetch_ns=10.0))
        for mr, idx in keys:
            hit, ns = att.access(mr, idx)
            assert (ns == 0.0) == hit
            assert att.resident <= entries


class TestEngineDeterminismProperty:
    @given(delays=st.lists(st.integers(min_value=0, max_value=1000),
                           min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_event_order_deterministic(self, delays):
        def trace_of():
            k = SimKernel()
            log = []

            def worker(i, d):
                yield k.timeout(d)
                log.append((k.now, i))

            for i, d in enumerate(delays):
                k.process(worker(i, d))
            k.run()
            return log

        first, second = trace_of(), trace_of()
        assert first == second
        times = [t for t, _ in first]
        assert times == sorted(times)

    @given(ns=st.floats(min_value=0, max_value=1e9, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_tick_conversion_monotone(self, ns):
        clock = TickClock(206.25)
        assert clock.ns_to_ticks(ns) <= clock.ns_to_ticks(ns + 1000)
        assert clock.ns_to_ticks(ns) >= 0


def _run_faulted_transfers(fault_plan, n_msgs=2, size=32 * 1024):
    """Two-rank rendezvous workload; returns (app ticks, counters,
    received payloads)."""
    from repro.core.placement import BufferPlacer, PlacementPolicy
    from repro.mpi.api import MPIConfig, MPIWorld
    from repro.systems import Cluster, presets

    cluster = Cluster(presets.opteron_infinihost_pcie(), n_nodes=2,
                      fault_plan=fault_plan)
    world = MPIWorld(cluster, ppn=1, config=MPIConfig())

    def program(comm):
        placer = BufferPlacer(comm.proc)
        buf = placer.place(size, PlacementPolicy.SMALL_PAGES, offset=0)
        if comm.rank == 0:
            for i in range(n_msgs):
                yield from comm.send(1, i, size, addr=buf.addr,
                                     payload=("m", i))
            return None
        got = []
        for i in range(n_msgs):
            payload, *_ = yield from comm.recv(0, i, addr=buf.addr)
            got.append(payload)
        return got

    results = world.run(program)
    ticks = max(r.app_ticks for r in results)
    return ticks, cluster.aggregate_counters(), results[1].value


def _run_or_abort(plan):
    """A faulted run either completes or aborts cleanly; both outcomes
    must be deterministic, so both are comparable values."""
    from repro.faults import MPITransportError

    try:
        return _run_faulted_transfers(plan)
    except MPITransportError as exc:
        return ("aborted", str(exc))


class TestFaultInjectionProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_same_seed_is_bit_identical(self, seed):
        from repro.faults import FaultPlan

        plan = FaultPlan(link_loss=0.05, link_corrupt=0.02,
                         reg_transient=0.1, seed=seed)
        assert _run_or_abort(plan) == _run_or_abort(plan)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_faults_never_speed_things_up(self, seed):
        from repro.faults import FaultPlan

        base_ticks, _, base_payloads = _run_faulted_transfers(None)
        outcome = _run_or_abort(FaultPlan(link_loss=0.05, seed=seed))
        if outcome[0] == "aborted":
            # retry exhaustion is a legal outcome — but it must surface
            # as a clean transport error, which _run_or_abort caught
            return
        ticks, counters, payloads = outcome
        # payloads survive whatever the link does; time only grows
        assert payloads == base_payloads
        assert ticks >= base_ticks
        if counters.get("faults.link.dropped", 0):
            # every drop must surface as a retry; it need not surface
            # as extra ticks — a retransmission that fits entirely
            # inside the pipeline's overlap window costs zero wall
            # ticks, and hypothesis does find such schedules
            assert counters.get("faults.qp.retries", 0) >= 1


class TestAddressSpaceProperties:
    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=64 * 4096),
                         min_size=1, max_size=20)
    )
    @settings(max_examples=30, deadline=None)
    def test_mmap_munmap_conserves_frames(self, lengths):
        pm = PhysicalMemory(256 * MB, hugepages=8)
        aspace = AddressSpace(pm, HugeTLBfs(pm))
        before = pm.free_small_frames
        vmas = [aspace.mmap(n) for n in lengths]
        # all VMAs disjoint
        spans = sorted((v.start, v.end) for v in vmas)
        for (a0, a1), (b0, _b1) in zip(spans, spans[1:]):
            assert a1 <= b0
        for v in vmas:
            aspace.munmap(v.start)
        assert pm.free_small_frames == before
