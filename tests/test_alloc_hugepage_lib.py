"""Unit tests for the paper's three-layer hugepage library."""

import pytest

from repro.alloc import (
    AllocationError,
    HugepageLibraryAllocator,
    HugepageLibraryConfig,
)
from repro.mem import (
    AddressSpace,
    HugePagePoolExhausted,
    HugeTLBfs,
    PAGE_2M,
    PAGE_4K,
    PhysicalMemory,
)

MB = 1024 * 1024
KB = 1024


@pytest.fixture
def aspace():
    pm = PhysicalMemory(1024 * MB, hugepages=64)
    return AddressSpace(pm, HugeTLBfs(pm))


@pytest.fixture
def lib(aspace):
    return HugepageLibraryAllocator(aspace)


class TestTransparencyLayer:
    def test_small_goes_to_libc(self, lib, aspace):
        p = lib.malloc(31 * KB)
        assert not lib.is_hugepage_backed(p)
        _, page_size = aspace.translate(p)
        assert page_size == PAGE_4K

    def test_cutoff_goes_to_hugepages(self, lib, aspace):
        p = lib.malloc(32 * KB)
        assert lib.is_hugepage_backed(p)
        _, page_size = aspace.translate(p)
        assert page_size == PAGE_2M

    def test_free_routes_to_owner(self, lib):
        small = lib.malloc(1 * KB)
        big = lib.malloc(1 * MB)
        lib.free(big)
        lib.free(small)
        assert lib.live_allocations == 0
        assert lib.libc.live_allocations == 0

    def test_custom_cutoff(self, aspace):
        lib = HugepageLibraryAllocator(
            aspace, config=HugepageLibraryConfig(cutoff_bytes=8 * KB)
        )
        assert lib.is_hugepage_backed(lib.malloc(8 * KB))
        assert not lib.is_hugepage_backed(lib.malloc(8 * KB - 1))

    def test_calloc_realloc_work(self, lib):
        p = lib.calloc(1024, 1024)  # 1 MB -> hugepages
        assert lib.is_hugepage_backed(p)
        q = lib.realloc(p, 2 * MB)
        assert lib.is_hugepage_backed(q)
        lib.free(q)


class TestMappingLayer:
    def test_fork_reserve_respected(self, aspace):
        total = aspace.hugetlbfs.total_pages
        lib = HugepageLibraryAllocator(
            aspace, config=HugepageLibraryConfig(fork_reserve_pages=4)
        )
        # a request that would eat the reserve falls back to libc
        p_fallback = lib.malloc((total - 3) * PAGE_2M)
        assert not lib.is_hugepage_backed(p_fallback)
        assert lib.counters[f"alloc.{lib.name}.fallback"] == 1
        lib.free(p_fallback)
        # a request leaving the reserve intact is served from hugepages
        p = lib.malloc((total - 4) * PAGE_2M)
        assert lib.is_hugepage_backed(p)
        assert aspace.hugetlbfs.free_pages == 4

    def test_pool_exhaustion_falls_back_transparently(self, aspace):
        """A preloaded library must never fail an allocation the
        application could have satisfied: when the pool is dry, large
        requests silently land on base pages."""
        lib = HugepageLibraryAllocator(
            aspace, config=HugepageLibraryConfig(fork_reserve_pages=0)
        )
        total = aspace.hugetlbfs.total_pages
        hogs = lib.malloc(total * PAGE_2M)  # drain the pool
        extra = lib.malloc(4 * PAGE_2M)     # still succeeds
        assert not lib.is_hugepage_backed(extra)
        lib.free(extra)
        lib.free(hogs)

    def test_min_map_pages(self, aspace):
        lib = HugepageLibraryAllocator(
            aspace, config=HugepageLibraryConfig(min_map_pages=4)
        )
        lib.malloc(64 * KB)
        assert lib.hugepages_mapped == 4

    def test_pages_mapped_grows_monotonically(self, lib):
        lib.malloc(3 * MB)
        first = lib.hugepages_mapped
        lib.malloc(3 * MB)
        assert lib.hugepages_mapped >= first


class TestManagementLayer:
    def test_reuse_without_remapping(self, lib):
        """Freed memory is reused: the pool never shrinks or remaps for a
        same-size cycle (the lazy-deregistration-friendly behaviour)."""
        p = lib.malloc(4 * MB)
        lib.free(p)
        mapped = lib.hugepages_mapped
        q = lib.malloc(4 * MB)
        assert q == p  # address-ordered first fit reuses the same spot
        assert lib.hugepages_mapped == mapped

    def test_same_size_cycle_is_cheap(self, lib):
        p = lib.malloc(8 * MB)
        lib.free(p)
        before = lib.stats.total_ns
        q = lib.malloc(8 * MB)
        lib.free(q)
        cycle = lib.stats.total_ns - before
        assert cycle < 1000  # no mapping, no populate, no coalescing

    def test_locality_between_buffers(self, lib):
        """Unlike libhugepagealloc, consecutive buffers share hugepages."""
        a = lib.malloc(64 * KB)
        b = lib.malloc(64 * KB)
        assert abs(b - a) <= PAGE_2M

    def test_deferred_coalescing_recovers_space(self, aspace):
        lib = HugepageLibraryAllocator(
            aspace, config=HugepageLibraryConfig(min_map_pages=1)
        )
        ptrs = [lib.malloc(512 * KB) for _ in range(4)]  # fills 1 hugepage
        mapped = lib.hugepages_mapped
        for p in ptrs:
            lib.free(p)
        # freelist now holds 4 non-coalesced 512 KB extents; a 2 MB request
        # must trigger the on-demand coalesce rather than mapping new pages
        q = lib.malloc(2 * MB - 4096)
        assert lib.hugepages_mapped == mapped
        assert q == ptrs[0]

    def test_management_free_of_foreign_pointer(self, lib):
        with pytest.raises(AllocationError):
            lib.management.free(0x1234000)


class TestFitPolicies:
    def test_best_fit_config(self, aspace):
        lib = HugepageLibraryAllocator(
            aspace, config=HugepageLibraryConfig(fit_policy="best")
        )
        p = lib.malloc(1 * MB)
        assert lib.is_hugepage_backed(p)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            HugepageLibraryConfig(fit_policy="worst")

    def test_invalid_cutoff_rejected(self):
        with pytest.raises(ValueError):
            HugepageLibraryConfig(cutoff_bytes=100)


class TestCoalesceOnFreeAblation:
    def test_eager_coalescing_merges(self, aspace):
        lib = HugepageLibraryAllocator(
            aspace, config=HugepageLibraryConfig(coalesce_on_free=True)
        )
        a = lib.malloc(512 * KB)
        b = lib.malloc(512 * KB)
        lib.free(a)
        lib.free(b)
        # eager variant merges adjacent extents immediately
        assert len(lib.management.freelist) <= 2

    def test_paper_variant_defers(self, lib):
        a = lib.malloc(512 * KB)
        b = lib.malloc(512 * KB)
        lib.free(a)
        lib.free(b)
        ext = [e for e in lib.management.freelist.extents]
        assert len(ext) >= 2  # not merged on free
