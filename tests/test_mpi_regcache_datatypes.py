"""Tests for the registration cache and datatype/SGE mapping."""

import pytest

from repro.ib.verbs import ProtectionDomain
from repro.mpi.datatypes import PackedVector, pack_sges
from repro.mpi.regcache import RegistrationCache
from repro.systems import Cluster, presets

KB = 1024
MB = 1024 * 1024


def make_cache(enabled=True, capacity=None):
    cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
    node = cluster.nodes[0]
    proc = node.new_process()
    cache = RegistrationCache(
        node.hca, proc.aspace, ProtectionDomain.fresh(),
        enabled=enabled, capacity_bytes=capacity,
    )
    return cluster.kernel, proc, cache


def drive(kernel, gen):
    """Run a generator to completion on the kernel, return its value."""
    proc = kernel.process(gen)
    kernel.run()
    return proc.value


class TestRegistrationCache:
    def test_hit_on_exact_range(self):
        kernel, proc, cache = make_cache()
        buf = proc.aspace.mmap(MB).start

        def scenario():
            mr1 = yield from cache.acquire(buf, MB)
            mr2 = yield from cache.acquire(buf, MB)
            return mr1, mr2

        mr1, mr2 = drive(kernel, scenario())
        assert mr1 is mr2
        assert cache.hits == 1 and cache.misses == 1

    def test_hit_on_contained_range(self):
        kernel, proc, cache = make_cache()
        buf = proc.aspace.mmap(MB).start

        def scenario():
            yield from cache.acquire(buf, MB)
            mr = yield from cache.acquire(buf + 100 * KB, 100 * KB)
            return mr

        drive(kernel, scenario())
        assert cache.hits == 1

    def test_hit_is_free_in_time(self):
        kernel, proc, cache = make_cache()
        buf = proc.aspace.mmap(MB).start

        def scenario():
            yield from cache.acquire(buf, MB)
            t0 = kernel.now
            yield from cache.acquire(buf, MB)
            return kernel.now - t0

        assert drive(kernel, scenario()) == 0

    def test_disabled_cache_always_registers(self):
        kernel, proc, cache = make_cache(enabled=False)
        buf = proc.aspace.mmap(MB).start

        def scenario():
            mr1 = yield from cache.acquire(buf, MB)
            yield from cache.release(mr1)
            mr2 = yield from cache.acquire(buf, MB)
            yield from cache.release(mr2)

        drive(kernel, scenario())
        assert cache.misses == 2
        assert len(cache) == 0

    def test_capacity_evicts_lru(self):
        kernel, proc, cache = make_cache(capacity=2 * MB)
        bufs = [proc.aspace.mmap(MB).start for _ in range(3)]

        def scenario():
            # release each MR before the next acquire: only idle
            # (unpinned) entries are eviction candidates
            for b in bufs:
                mr = yield from cache.acquire(b, MB)
                yield from cache.release(mr)

        drive(kernel, scenario())
        assert cache.cached_bytes <= 2 * MB
        assert cache.counters["regcache.evict"] == 1

    def test_eviction_skips_pinned_inflight_mr(self):
        """Capacity eviction must never evict an MR a transfer still
        holds (acquired, not yet released): deregistering it would pull
        the adapter's translations out from under an in-flight DMA.
        The LRU entry here is pinned, so the *next*-coldest unpinned
        entry must be the victim instead."""
        kernel, proc, cache = make_cache(capacity=2 * MB)
        buf_a, buf_b, buf_c = [proc.aspace.mmap(MB).start for _ in range(3)]

        def scenario():
            # A: acquired and *held* (an in-flight rendezvous), LRU slot
            mr_a = yield from cache.acquire(buf_a, MB)
            # B: acquired and released — idle, the legal victim
            mr_b = yield from cache.acquire(buf_b, MB)
            yield from cache.release(mr_b)
            # C: pushes the cache over capacity
            yield from cache.acquire(buf_c, MB)
            return mr_a

        mr_a = drive(kernel, scenario())
        assert cache.counters["regcache.evict"] == 1
        # A (pinned, though LRU) survived; B was evicted
        assert mr_a in cache._entries
        assert cache._find(buf_a, MB) is mr_a
        assert cache._find(buf_b, MB) is None
        assert mr_a.registered

    def test_release_unpins_for_future_eviction(self):
        """Once released, a formerly pinned MR is an ordinary eviction
        candidate again."""
        kernel, proc, cache = make_cache(capacity=2 * MB)
        buf_a, buf_b, buf_c = [proc.aspace.mmap(MB).start for _ in range(3)]

        def scenario():
            mr_a = yield from cache.acquire(buf_a, MB)
            yield from cache.release(mr_a)
            mr_b = yield from cache.acquire(buf_b, MB)
            yield from cache.release(mr_b)
            yield from cache.acquire(buf_c, MB)

        drive(kernel, scenario())
        # A was LRU and unpinned: evicted normally
        assert cache._find(buf_a, MB) is None
        assert cache.counters["regcache.evict"] == 1

    def test_invalidate_range_unpins(self):
        kernel, proc, cache = make_cache()
        vma = proc.aspace.mmap(MB)

        def scenario():
            yield from cache.acquire(vma.start, MB)

        drive(kernel, scenario())
        dropped = cache.invalidate_range(vma.start, MB)
        assert dropped == 1
        proc.aspace.munmap(vma.start)  # possible only if unpinned

    def test_invalidate_ignores_disjoint(self):
        kernel, proc, cache = make_cache()
        a = proc.aspace.mmap(MB)
        b = proc.aspace.mmap(MB)

        def scenario():
            yield from cache.acquire(a.start, MB)

        drive(kernel, scenario())
        assert cache.invalidate_range(b.start, MB) == 0
        assert len(cache) == 1

    def test_unmap_hook_integration(self):
        """Freeing an mmap-backed buffer must invalidate the cache (the
        paper's motivation for hooking unmap, not free)."""
        from repro.mpi import MPIConfig, MPIWorld

        cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
        world = MPIWorld(cluster, ppn=1)

        def program(comm):
            other = 1 - comm.rank
            for _ in range(3):
                buf = comm.proc.malloc(512 * KB)  # libc mmap path
                yield from comm.sendrecv(other, 4, 256 * KB, source=other,
                                         recvtag=4, send_addr=buf,
                                         recv_addr=buf + 256 * KB)
                comm.proc.free(buf)  # munmap -> hook -> invalidate
            return comm.endpoint.regcache.misses

        results = world.run(program)
        # every iteration re-registers: the cache never helps here
        assert all(r.value >= 3 for r in results)

    def test_flush(self):
        kernel, proc, cache = make_cache()
        buf = proc.aspace.mmap(MB).start

        def scenario():
            yield from cache.acquire(buf, MB)
            yield from cache.flush()

        drive(kernel, scenario())
        assert len(cache) == 0


class TestPackedVector:
    def test_blocks(self):
        v = PackedVector(base=0x1000, count=3, block_bytes=64, stride_bytes=256)
        assert v.blocks() == [(0x1000, 64), (0x1100, 64), (0x1200, 64)]
        assert v.total_bytes == 192
        assert v.span_bytes == 2 * 256 + 64

    def test_validation(self):
        with pytest.raises(ValueError):
            PackedVector(base=0, count=0, block_bytes=64, stride_bytes=256)
        with pytest.raises(ValueError):
            PackedVector(base=0, count=2, block_bytes=64, stride_bytes=32)

    def test_pack_sges(self):
        sges = pack_sges([(0x1000, 64), (0x2000, 32)], lkey=7)
        assert [(s.addr, s.length, s.lkey) for s in sges] == [
            (0x1000, 64, 7), (0x2000, 32, 7)
        ]

    def test_pack_sges_empty_rejected(self):
        with pytest.raises(ValueError):
            pack_sges([], lkey=1)


class TestSGEPackedSend:
    """The §7 feature: non-contiguous sends through SGE lists vs CPU pack."""

    def _run(self, use_sge):
        from repro.ib.verbs import ProtectionDomain
        from repro.mpi import MPIConfig, MPIWorld

        cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
        world = MPIWorld(cluster, ppn=1, config=MPIConfig(use_sge_pack=use_sge))
        out = {}

        def program(comm):
            if comm.rank == 0:
                vma = comm.proc.aspace.mmap(64 * KB)
                mr = yield from comm.endpoint.regcache.acquire(vma.start, 64 * KB)
                blocks = [(vma.start + i * 4096, 1500) for i in range(4)]
                t0 = comm.kernel.now
                yield from comm.send_packed(1, 5, blocks, mr, payload="packed")
                out["ticks"] = comm.kernel.now - t0
                return None
            payload, size, _, _ = yield from comm.recv(0, 5)
            return (payload, size)

        results = world.run(program)
        return results[1].value, out["ticks"]

    def test_payload_identical_both_modes(self):
        (p_sge, s_sge), _ = self._run(True)
        (p_cpu, s_cpu), _ = self._run(False)
        assert p_sge == p_cpu == "packed"
        assert s_sge == s_cpu == 6000

    def test_sge_mode_skips_copy(self):
        _, t_sge = self._run(True)
        _, t_cpu = self._run(False)
        assert t_sge < t_cpu
