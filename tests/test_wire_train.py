"""The wire-train contract: DES pipeline == folded path == closed form.

Three parties must agree tick-exactly on a back-to-back message train
(:mod:`repro.workloads.train`):

- the **reference machinery** — per-message generator processes walking
  every pipeline hop (``REPRO_NO_FOLD`` / ``fastpath.fold_forced(False)``);
- the **folded delivery path** — the callback chains in
  :mod:`repro.ib.hca` that replace those processes (the default);
- the **closed form** — :func:`repro.workloads.train.analytic_period_ticks`
  built on :meth:`repro.ib.link.IBLink.train_ns`.

And both schedulers must dispatch the whole thing identically.
"""

from __future__ import annotations

import pytest

from repro import fastpath
from repro.engine import SCHEDULERS, SimKernel, set_default_scheduler
from repro.ib.link import IBLink, LinkConfig
from repro.workloads.train import run_train


# ---------------------------------------------------------------------------
# IBLink.train_ns: the closed-form wire half
# ---------------------------------------------------------------------------


class TestTrainNs:
    def test_is_count_times_serialization(self):
        link = IBLink(LinkConfig())
        for nbytes in (0, 1, 1024, 2048, 2049, 65536):
            one = link.serialization_ns(nbytes)
            assert link.train_ns(nbytes, 1) == one
            assert link.train_ns(nbytes, 7) == pytest.approx(7 * one)
        assert link.train_ns(1024, 0) == 0.0

    def test_negative_count_rejected(self):
        link = IBLink(LinkConfig())
        with pytest.raises(ValueError, match="negative message count"):
            link.train_ns(1024, -1)

    def test_zero_byte_train_pays_packet_floor(self):
        # a train of headers is still a train of packets, never free
        link = IBLink(LinkConfig())
        assert link.train_ns(0, 5) == 5 * link.config.packet_ns


# ---------------------------------------------------------------------------
# the tick-exact pin: simulated train vs analytic period
# ---------------------------------------------------------------------------


class TestClosedFormPin:
    """With ``window=1`` the pipeline is strictly sequential, so train
    *differences* cancel the cold-ATT first message and the steady state
    must march at exactly ``analytic_period_ticks`` per message."""

    @pytest.mark.parametrize("msg_bytes", [64, 1024, 4096])
    def test_steady_state_period_matches_analytic(self, msg_bytes):
        base = run_train(msg_bytes=msg_bytes, count=1, window=1)
        longer = run_train(msg_bytes=msg_bytes, count=6, window=1)
        assert longer.analytic_period_ticks == base.analytic_period_ticks
        assert (
            longer.total_ticks - base.total_ticks
            == 5 * base.analytic_period_ticks
        )

    def test_period_is_positive_and_linear(self):
        r3 = run_train(msg_bytes=1024, count=3, window=1)
        r5 = run_train(msg_bytes=1024, count=5, window=1)
        assert r3.analytic_period_ticks > 0
        assert r5.total_ticks - r3.total_ticks == 2 * r3.analytic_period_ticks

    def test_counters_see_every_message(self):
        res = run_train(msg_bytes=512, count=9, window=4)
        assert res.tx_messages == 9
        assert res.rx_messages == 9
        assert res.ticks_per_msg == res.total_ticks / 9


# ---------------------------------------------------------------------------
# identity: fold vs process machinery, heap vs calendar
# ---------------------------------------------------------------------------

def _train_signature(**kwargs):
    res = run_train(**kwargs)
    return (res.total_ticks, res.tx_messages, res.rx_messages)


class TestIdentity:
    def test_fold_matches_process_machinery(self):
        kwargs = dict(msg_bytes=2048, count=40, window=8)
        with fastpath.fold_forced(True):
            folded = _train_signature(**kwargs)
        with fastpath.fold_forced(False):
            reference = _train_signature(**kwargs)
        assert folded == reference

    def test_fold_matches_on_reference_costing_path(self):
        # folding is orthogonal to the fast/reference costing switch:
        # it must hold on both
        kwargs = dict(msg_bytes=1024, count=25, window=4)
        with fastpath.forced(False):
            with fastpath.fold_forced(True):
                folded = _train_signature(**kwargs)
            with fastpath.fold_forced(False):
                reference = _train_signature(**kwargs)
        assert folded == reference

    def test_schedulers_agree_on_the_train(self):
        kwargs = dict(msg_bytes=1024, count=40, window=16)
        signatures = {}
        prior = SimKernel().scheduler_kind
        try:
            for kind in sorted(SCHEDULERS):
                set_default_scheduler(kind)
                signatures[kind] = _train_signature(**kwargs)
        finally:
            set_default_scheduler(prior)
        assert signatures["heap"] == signatures["calendar"]

    def test_window_only_overlaps_never_reorders(self):
        # more window = more overlap = fewer total ticks, same messages
        narrow = run_train(msg_bytes=1024, count=30, window=1)
        wide = run_train(msg_bytes=1024, count=30, window=16)
        assert wide.total_ticks < narrow.total_ticks
        assert (wide.tx_messages, wide.rx_messages) == (30, 30)


# ---------------------------------------------------------------------------
# argument validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [dict(msg_bytes=0), dict(count=0), dict(window=0)],
    ids=["msg_bytes", "count", "window"],
)
def test_run_train_rejects_degenerate_arguments(kwargs):
    with pytest.raises(ValueError, match="must be >= 1"):
        run_train(**kwargs)
