"""Tests for the extended collective set (gather/scatter/scan) and the
trace save/load utilities."""

import numpy as np
import pytest

from repro.alloc import TraceOp, abinit_like_trace, load_trace, save_trace
from repro.mpi import MPIWorld
from repro.systems import Cluster, presets


def run_collective(program, ppn=2, n_nodes=2):
    cluster = Cluster(presets.opteron_infinihost_pcie(), n_nodes=n_nodes)
    world = MPIWorld(cluster, ppn=ppn)
    return world.run(program)


class TestGather:
    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_root_collects_in_rank_order(self, root):
        def program(comm):
            got = yield from comm.gather(root, 64, value=comm.rank * 11)
            return got

        results = run_collective(program)
        assert results[root].value == [0, 11, 22, 33]
        for r in results:
            if r.rank != root:
                assert r.value is None

    def test_gather_numpy_values(self):
        def program(comm):
            got = yield from comm.gather(0, 64, value=np.full(3, comm.rank))
            return got

        results = run_collective(program)
        for i, arr in enumerate(results[0].value):
            assert np.array_equal(arr, np.full(3, i))


class TestScatter:
    @pytest.mark.parametrize("root", [0, 2])
    def test_every_rank_gets_its_element(self, root):
        def program(comm):
            values = [f"item-{d}" for d in range(comm.size)] \
                if comm.rank == root else None
            got = yield from comm.scatter(root, 64, values=values)
            return got

        results = run_collective(program)
        for r in results:
            assert r.value == f"item-{r.rank}"

    def test_wrong_value_count_rejected(self):
        def program(comm):
            values = ["too", "few"] if comm.rank == 0 else None
            yield from comm.scatter(0, 64, values=values)

        with pytest.raises(Exception):
            run_collective(program)


class TestScan:
    def test_inclusive_prefix_sum(self):
        def program(comm):
            got = yield from comm.scan(8, value=comm.rank + 1)
            return got

        results = run_collective(program)
        expected = [1, 3, 6, 10]  # prefix sums of 1..4
        assert [r.value for r in results] == expected

    def test_scan_custom_op(self):
        def program(comm):
            got = yield from comm.scan(8, value=comm.rank, op=max)
            return got

        results = run_collective(program)
        assert [r.value for r in results] == [0, 1, 2, 3]

    def test_scan_single_rank(self):
        def program(comm):
            got = yield from comm.scan(8, value=42)
            return got

        results = run_collective(program, ppn=1, n_nodes=1)
        assert results[0].value == 42


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = abinit_like_trace(iterations=2)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, str(path))
        assert load_trace(str(path)) == trace

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"op": "malloc", "handle": 1, "size": 64}\n\n')
        assert load_trace(str(path)) == [TraceOp("malloc", 1, 64)]

    def test_bad_record_reported_with_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"op": "malloc", "handle": 1, "size": 64}\nnot-json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_trace(str(path))

    def test_invalid_op_rejected_on_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"op": "explode", "handle": 1, "size": 64}\n')
        with pytest.raises(ValueError):
            load_trace(str(path))
