"""Unit/integration tests for the timed memory-access engine."""

import pytest

from repro.analysis import CounterSet
from repro.engine import TickClock
from repro.mem import (
    AddressSpace,
    CacheConfig,
    HugeTLBfs,
    MemoryAccessEngine,
    PAGE_2M,
    PAGE_4K,
    PhysicalMemory,
    TLBConfig,
)

MB = 1024 * 1024


@pytest.fixture
def setup():
    pm = PhysicalMemory(512 * MB, hugepages=64, fragmentation=1.0, seed=3)
    fs = HugeTLBfs(pm)
    aspace = AddressSpace(pm, fs)
    counters = CounterSet()
    engine = MemoryAccessEngine(
        aspace, TLBConfig(), CacheConfig(), TickClock(200.0), counters
    )
    return aspace, engine, counters


class TestTouch:
    def test_positive_cost(self, setup):
        aspace, engine, _ = setup
        vma = aspace.mmap(PAGE_4K)
        cost = engine.touch(vma.start, 256)
        assert cost.ns > 0
        assert cost.cache_misses == 4  # 256 B = 4 cold lines

    def test_second_touch_hits_cache(self, setup):
        aspace, engine, _ = setup
        vma = aspace.mmap(PAGE_4K)
        engine.touch(vma.start, 256)
        cost = engine.touch(vma.start, 256)
        assert cost.cache_hits == 4
        assert cost.cache_misses == 0

    def test_page_crossing_counts_two_translations(self, setup):
        aspace, engine, _ = setup
        vma = aspace.mmap(2 * PAGE_4K)
        cost = engine.touch(vma.start + PAGE_4K - 64, 128)
        assert cost.tlb_misses + cost.tlb_hits == 2

    def test_invalid_size(self, setup):
        _, engine, _ = setup
        with pytest.raises(ValueError):
            engine.touch(0, 0)


class TestStream:
    def test_hugepage_stream_beats_scattered_4k(self, setup):
        """The §5.2 'other improvements': physical contiguity helps the
        prefetcher, so streaming hugepage-backed memory is faster."""
        aspace, engine, _ = setup
        small = aspace.mmap(8 * MB)
        huge = aspace.mmap(8 * MB, page_size=PAGE_2M)
        c_small = engine.stream(small.start, 8 * MB)
        c_huge = engine.stream(huge.start, 8 * MB)
        assert c_huge.ns < c_small.ns
        # the effect is noticeable but bounded (tens of percent)
        assert c_small.ns / c_huge.ns < 3.0

    def test_tlb_misses_per_page(self, setup):
        aspace, engine, _ = setup
        small = aspace.mmap(4 * MB)
        huge = aspace.mmap(4 * MB, page_size=PAGE_2M)
        c_small = engine.stream(small.start, 4 * MB)
        c_huge = engine.stream(huge.start, 4 * MB)
        assert c_small.tlb_misses == 1024
        assert c_huge.tlb_misses == 2

    def test_counters_updated(self, setup):
        aspace, engine, counters = setup
        vma = aspace.mmap(1 * MB)
        engine.stream(vma.start, 1 * MB)
        assert counters["tlb.4k.miss"] == 256

    def test_ticks_conversion(self, setup):
        aspace, engine, _ = setup
        vma = aspace.mmap(1 * MB)
        cost = engine.stream(vma.start, 1 * MB)
        assert cost.ticks == TickClock(200.0).ns_to_ticks(cost.ns)

    def test_copy_costs_both_sides(self, setup):
        aspace, engine, _ = setup
        a = aspace.mmap(1 * MB)
        b = aspace.mmap(1 * MB)
        c_copy = engine.copy(a.start, b.start, 1 * MB)
        c_one = engine.stream(a.start, 1 * MB)
        assert c_copy.ns > c_one.ns


class TestRotate:
    def test_hugepage_rotation_thrashes(self, setup):
        """More streams than hugepage TLB entries: misses explode (the
        paper's 'TLB misses increased dramatically, up to eight times')."""
        aspace, engine, _ = setup
        huge = aspace.mmap(32 * MB, page_size=PAGE_2M)
        small = aspace.mmap(32 * MB)
        regions_h = [(huge.start + i * 2 * MB, MB) for i in range(16)]
        regions_s = [(small.start + i * 2 * MB, MB) for i in range(16)]
        c_h = engine.rotate(regions_h, 10_000, 256)
        c_s = engine.rotate(regions_s, 10_000, 256)
        assert c_h.tlb_misses > 5 * c_s.tlb_misses

    def test_few_streams_fit(self, setup):
        aspace, engine, _ = setup
        huge = aspace.mmap(8 * MB, page_size=PAGE_2M)
        regions = [(huge.start + i * 2 * MB, MB) for i in range(4)]
        cost = engine.rotate(regions, 1000, 256)
        assert cost.tlb_misses == 4  # cold only

    def test_validation(self, setup):
        _, engine, _ = setup
        with pytest.raises(ValueError):
            engine.rotate([], 10, 64)


class TestRandom:
    def test_hugepages_cover_more(self, setup):
        """Uniform random over a 64 MB region: 8 hugepage entries cover
        16 MB (25%), 544 4K entries cover ~2 MB (3%)."""
        aspace, engine, _ = setup
        small = aspace.mmap(64 * MB)
        huge = aspace.mmap(64 * MB, page_size=PAGE_2M)
        c_small = engine.random(small.start, 64 * MB, 10_000)
        c_huge = engine.random(huge.start, 64 * MB, 10_000)
        assert c_huge.tlb_misses < c_small.tlb_misses

    def test_every_access_misses_cache(self, setup):
        aspace, engine, _ = setup
        vma = aspace.mmap(16 * MB)
        cost = engine.random(vma.start, 16 * MB, 500)
        assert cost.cache_misses == 500

    def test_validation(self, setup):
        aspace, engine, _ = setup
        vma = aspace.mmap(PAGE_4K)
        with pytest.raises(ValueError):
            engine.random(vma.start, 0, 10)


class TestAccessCostAlgebra:
    def test_add(self, setup):
        aspace, engine, _ = setup
        vma = aspace.mmap(2 * PAGE_4K)
        a = engine.touch(vma.start, 64)
        b = engine.touch(vma.start + PAGE_4K, 64)
        c = a + b
        assert c.ns == a.ns + b.ns
        assert c.tlb_misses == a.tlb_misses + b.tlb_misses
        assert c.cache_misses == a.cache_misses + b.cache_misses
