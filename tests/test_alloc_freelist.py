"""Unit tests for the chunked address-ordered free list."""

import pytest

from repro.alloc.freelist import CHUNK_SIZE, ChunkFreeList, FreeExtent


@pytest.fixture
def fl():
    return ChunkFreeList()


def addr(chunk_index: int) -> int:
    return 0x100000 + chunk_index * CHUNK_SIZE


class TestFreeExtent:
    def test_end(self):
        e = FreeExtent(start=addr(0), n_chunks=4)
        assert e.end == addr(4)

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            FreeExtent(start=addr(0) + 1, n_chunks=1)

    def test_positive_chunks_enforced(self):
        with pytest.raises(ValueError):
            FreeExtent(start=addr(0), n_chunks=0)


class TestFirstFit:
    def test_empty_list_returns_none(self, fl):
        vaddr, visited = fl.take_first_fit(1)
        assert vaddr is None

    def test_exact_fit_consumes_extent(self, fl):
        fl.insert(addr(0), 4)
        vaddr, _ = fl.take_first_fit(4)
        assert vaddr == addr(0)
        assert len(fl) == 0

    def test_split_leaves_remainder(self, fl):
        fl.insert(addr(0), 10)
        vaddr, _ = fl.take_first_fit(4)
        assert vaddr == addr(0)
        assert fl.extents == (FreeExtent(addr(4), 6),)

    def test_address_order_priority(self, fl):
        """First fit must prefer the lowest *address*, not insert order."""
        fl.insert(addr(100), 4)
        fl.insert(addr(0), 4)
        vaddr, _ = fl.take_first_fit(2)
        assert vaddr == addr(0)

    def test_skips_too_small_extents(self, fl):
        fl.insert(addr(0), 2)
        fl.insert(addr(10), 8)
        vaddr, visited = fl.take_first_fit(5)
        assert vaddr == addr(10)
        assert visited == 2

    def test_visited_counts_scanned_nodes(self, fl):
        for i in range(5):
            fl.insert(addr(i * 10), 1)
        _, visited = fl.take_first_fit(2)  # nothing fits
        assert visited == 5

    def test_invalid_count(self, fl):
        with pytest.raises(ValueError):
            fl.take_first_fit(0)


class TestBestFit:
    def test_prefers_tightest(self, fl):
        fl.insert(addr(0), 10)
        fl.insert(addr(20), 4)
        vaddr, _ = fl.take_best_fit(3)
        assert vaddr == addr(20)

    def test_splits_remainder(self, fl):
        fl.insert(addr(0), 10)
        vaddr, _ = fl.take_best_fit(4)
        assert vaddr == addr(0)
        assert fl.extents[0].n_chunks == 6

    def test_none_when_nothing_fits(self, fl):
        fl.insert(addr(0), 2)
        vaddr, _ = fl.take_best_fit(5)
        assert vaddr is None


class TestInsert:
    def test_no_coalescing_on_insert(self, fl):
        """§3.2 item 5: adjacent freed extents stay separate."""
        fl.insert(addr(0), 4)
        fl.insert(addr(4), 4)
        assert len(fl) == 2
        assert fl.free_chunks == 8

    def test_sorted_invariant_maintained(self, fl):
        fl.insert(addr(20), 2)
        fl.insert(addr(0), 2)
        fl.insert(addr(10), 2)
        assert [e.start for e in fl.extents] == [addr(0), addr(10), addr(20)]
        assert fl.invariant_ok()

    def test_overlap_with_predecessor_rejected(self, fl):
        fl.insert(addr(0), 4)
        with pytest.raises(ValueError):
            fl.insert(addr(2), 2)

    def test_overlap_with_successor_rejected(self, fl):
        fl.insert(addr(4), 4)
        with pytest.raises(ValueError):
            fl.insert(addr(2), 4)


class TestCoalesce:
    def test_merges_adjacent(self, fl):
        fl.insert(addr(0), 4)
        fl.insert(addr(4), 4)
        fl.insert(addr(20), 2)
        merges, _ = fl.coalesce()
        assert merges == 1
        assert fl.extents == (FreeExtent(addr(0), 8), FreeExtent(addr(20), 2))

    def test_merges_chains(self, fl):
        for i in range(5):
            fl.insert(addr(i), 1)
        merges, _ = fl.coalesce()
        assert merges == 4
        assert len(fl) == 1
        assert fl.free_chunks == 5

    def test_empty_list(self, fl):
        assert fl.coalesce() == (0, 0)

    def test_enables_large_fit(self, fl):
        """The deferred-coalescing path: fragmented same-size frees merge
        on demand into a big enough run."""
        for i in range(8):
            fl.insert(addr(i * 2), 2)
        assert fl.take_first_fit(16)[0] is None
        fl.coalesce()
        vaddr, _ = fl.take_first_fit(16)
        assert vaddr == addr(0)


class TestChunksFor:
    def test_rounding(self):
        assert ChunkFreeList.chunks_for(1) == 1
        assert ChunkFreeList.chunks_for(CHUNK_SIZE) == 1
        assert ChunkFreeList.chunks_for(CHUNK_SIZE + 1) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            ChunkFreeList.chunks_for(0)
