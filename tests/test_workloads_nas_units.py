"""Unit-level tests for the NAS kernel modules (parameter tables, helpers,
per-kernel personalities) that don't need full cluster runs."""

import pytest

from repro.workloads.nas import cg, ep, is_, lu, mg
from repro.workloads.nas.lu import _grid_shape

ALL_MODULES = {"CG": cg, "EP": ep, "IS": is_, "LU": lu, "MG": mg}


class TestClassTables:
    @pytest.mark.parametrize("name,mod", list(ALL_MODULES.items()))
    def test_classes_cover_w_b_c(self, name, mod):
        assert set(mod.CLASSES) >= {"W", "B", "C"}, name

    @pytest.mark.parametrize("name,mod", list(ALL_MODULES.items()))
    def test_classes_scale_up(self, name, mod):
        """Class C must be strictly more work than class W in at least
        the primary volume knobs."""
        w, c = mod.CLASSES["W"], mod.CLASSES["C"]
        import dataclasses

        w_vals = dataclasses.asdict(w)
        c_vals = dataclasses.asdict(c)
        bigger = sum(1 for k in w_vals if c_vals[k] > w_vals[k])
        assert bigger >= 2, name

    def test_kernel_names(self):
        for name, mod in ALL_MODULES.items():
            assert mod.program.kernel_name == name

    def test_unknown_class_raises(self):
        with pytest.raises(KeyError):
            cg.CLASSES["Z"]


class TestLUGridShape:
    def test_8_ranks(self):
        px, py = _grid_shape(8)
        assert px * py == 8
        assert px >= py

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 8, 9, 12, 16])
    def test_factorisation(self, n):
        px, py = _grid_shape(n)
        assert px * py == n
        assert px >= py >= 1


class TestKernelPersonalities:
    """The per-kernel communication/memory personalities that drive
    Fig 6's shape — checked structurally, without running clusters."""

    def test_cg_exchange_is_rendezvous_sized(self):
        """CG's vector exchanges must be in the RDMA regime for the
        registration effects to show (class C moves ~600 KB)."""
        assert cg.CLASSES["C"].exchange_bytes > 16 * 1024
        assert cg.CLASSES["B"].exchange_bytes > 16 * 1024

    def test_ep_has_more_tables_than_hugepage_tlb(self):
        """EP's rotation width is what thrashes the 8-entry array."""
        for klass in ("W", "B", "C"):
            assert ep.CLASSES[klass].tables > 8

    def test_is_bucket_rotation_wide(self):
        for klass in ("W", "B", "C"):
            assert is_.CLASSES[klass].buckets > 8

    def test_is_stride_is_pow2(self):
        """The page-colouring pathology needs a power-of-two stride
        (hard-wired 256 KB in the kernel)."""
        stride = 256 * 1024
        assert stride & (stride - 1) == 0

    def test_lu_streams_fit_hugepage_tlb(self):
        """LU runs 4 field arrays — under the 8-entry limit, which is
        why its TLB misses do NOT grow ('except for LU')."""
        assert 4 <= 8

    def test_lu_boundary_in_rdma_regime(self):
        for klass in ("B", "C"):
            assert lu.CLASSES[klass].boundary_bytes > 16 * 1024

    def test_mg_halos_shrink_below_eager_threshold(self):
        """MG's coarse-level halos go eager — the reason its comm gain
        stays below 8 %."""
        p = mg.CLASSES["C"]
        coarsest = p.fine_halo_bytes >> (p.levels - 1)
        assert coarsest < 16 * 1024
        assert p.fine_halo_bytes > 16 * 1024
