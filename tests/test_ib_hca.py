"""Integration tests for the HCA pipeline (verbs level, two nodes)."""

import pytest

from repro.ib.hca import HCA
from repro.ib.verbs import (
    SGE,
    CompletionQueue,
    IBVerbsError,
    ProtectionDomain,
    RecvWR,
    SendWR,
)
from repro.systems import Cluster, presets

MB = 1024 * 1024


def make_pair(spec=None):
    """Two connected nodes with one QP pair and registered 1 MB buffers."""
    cluster = Cluster(spec if spec is not None else presets.systemp_ehca(), 2)
    k = cluster.kernel
    a, b = cluster.nodes
    pa, pb = a.new_process(), b.new_process()
    buf_a = pa.aspace.mmap(MB).start
    buf_b = pb.aspace.mmap(MB).start
    pd_a, pd_b = ProtectionDomain.fresh(), ProtectionDomain.fresh()
    cqs = {name: CompletionQueue(k) for name in ("sa", "ra", "sb", "rb")}
    qa = a.hca.create_qp(pd_a, cqs["sa"], cqs["ra"])
    qb = b.hca.create_qp(pd_b, cqs["sb"], cqs["rb"])
    HCA.connect_pair(qa, a.hca, qb, b.hca)
    return cluster, (a, pa, buf_a, pd_a, qa), (b, pb, buf_b, pd_b, qb), cqs


class TestSendRecv:
    def test_payload_delivery_and_completions(self):
        cluster, (a, pa, buf_a, pd_a, qa), (b, pb, buf_b, pd_b, qb), cqs = make_pair()
        k = cluster.kernel
        got = {}

        def sender():
            mr = yield from a.hca.register_memory(pa.aspace, pd_a, buf_a, MB)
            yield from a.hca.post_send(
                qa, SendWR(wr_id=1, sges=[SGE(buf_a, 512, mr.lkey)], payload="DATA")
            )
            wc = yield from a.hca.wait_completion(cqs["sa"])
            got["send_status"] = wc.status

        def receiver():
            mr = yield from b.hca.register_memory(pb.aspace, pd_b, buf_b, MB)
            yield from b.hca.post_recv(
                qb, RecvWR(wr_id=2, sges=[SGE(buf_b, 4096, mr.lkey)])
            )
            wc = yield from b.hca.wait_completion(cqs["rb"])
            got["payload"] = wc.payload
            got["byte_len"] = wc.byte_len
            got["recv_status"] = wc.status

        k.process(sender())
        k.process(receiver())
        k.run()
        assert got == {
            "send_status": "success",
            "payload": "DATA",
            "byte_len": 512,
            "recv_status": "success",
        }

    def test_send_waits_for_posted_recv(self):
        """RNR behaviour: the message is not consumed until a receive is
        posted; the send completes only afterwards."""
        cluster, (a, pa, buf_a, pd_a, qa), (b, pb, buf_b, pd_b, qb), cqs = make_pair()
        k = cluster.kernel
        times = {}

        def sender():
            mr = yield from a.hca.register_memory(pa.aspace, pd_a, buf_a, MB)
            yield from a.hca.post_send(
                qa, SendWR(wr_id=1, sges=[SGE(buf_a, 64, mr.lkey)])
            )
            yield from a.hca.wait_completion(cqs["sa"])
            times["send_done"] = k.now

        def receiver():
            mr = yield from b.hca.register_memory(pb.aspace, pd_b, buf_b, MB)
            yield k.timeout(500_000)  # post the receive very late
            times["posted"] = k.now
            yield from b.hca.post_recv(
                qb, RecvWR(wr_id=2, sges=[SGE(buf_b, 4096, mr.lkey)])
            )
            yield from b.hca.wait_completion(cqs["rb"])

        k.process(sender())
        k.process(receiver())
        k.run()
        assert times["send_done"] > times["posted"]

    def test_truncation_is_an_error(self):
        cluster, (a, pa, buf_a, pd_a, qa), (b, pb, buf_b, pd_b, qb), cqs = make_pair()
        k = cluster.kernel
        got = {}

        def sender():
            mr = yield from a.hca.register_memory(pa.aspace, pd_a, buf_a, MB)
            yield from a.hca.post_send(
                qa, SendWR(wr_id=1, sges=[SGE(buf_a, 8192, mr.lkey)])
            )
            wc = yield from a.hca.wait_completion(cqs["sa"])
            got["send_status"] = wc.status

        def receiver():
            mr = yield from b.hca.register_memory(pb.aspace, pd_b, buf_b, MB)
            yield from b.hca.post_recv(
                qb, RecvWR(wr_id=2, sges=[SGE(buf_b, 64, mr.lkey)])  # too small
            )
            wc = yield from b.hca.wait_completion(cqs["rb"])
            got["recv_status"] = wc.status

        k.process(sender())
        k.process(receiver())
        k.run()
        assert got["recv_status"] == "local-length-error"
        assert got["send_status"] == "local-length-error"


class TestValidation:
    def test_unconnected_qp_rejected(self):
        cluster = Cluster(presets.systemp_ehca(), 2)
        a = cluster.nodes[0]
        pa = a.new_process()
        pd = ProtectionDomain.fresh()
        qp = a.hca.create_qp(pd, CompletionQueue(cluster.kernel),
                             CompletionQueue(cluster.kernel))

        def attempt():
            buf = pa.aspace.mmap(4096).start
            mr = yield from a.hca.register_memory(pa.aspace, pd, buf, 4096)
            yield from a.hca.post_send(qp, SendWR(wr_id=1, sges=[SGE(buf, 8, mr.lkey)]))

        cluster.kernel.process(attempt())
        with pytest.raises(IBVerbsError):
            cluster.kernel.run()

    def test_bad_lkey_rejected(self):
        cluster, (a, pa, buf_a, pd_a, qa), _, cqs = make_pair()

        def attempt():
            yield from a.hca.post_send(
                qa, SendWR(wr_id=1, sges=[SGE(buf_a, 8, 0xBAD)])
            )

        cluster.kernel.process(attempt())
        with pytest.raises(IBVerbsError):
            cluster.kernel.run()

    def test_sge_outside_mr_rejected(self):
        cluster, (a, pa, buf_a, pd_a, qa), _, cqs = make_pair()

        def attempt():
            mr = yield from a.hca.register_memory(pa.aspace, pd_a, buf_a, 4096)
            yield from a.hca.post_send(
                qa, SendWR(wr_id=1, sges=[SGE(buf_a + 4000, 200, mr.lkey)])
            )

        cluster.kernel.process(attempt())
        with pytest.raises(IBVerbsError):
            cluster.kernel.run()

    def test_wr_needs_sges(self):
        with pytest.raises(IBVerbsError):
            SendWR(wr_id=1, sges=[])
        # zero-length SGEs are legal (the IB spec allows zero-byte
        # messages: header-only on the wire); negative lengths are not
        assert SGE(addr=0, length=0, lkey=1).length == 0
        with pytest.raises(IBVerbsError):
            SGE(addr=0, length=-1, lkey=1)
        with pytest.raises(IBVerbsError):
            SendWR(wr_id=1, sges=[SGE(0, 8, 1)], opcode="atomic_cas")


class TestRDMAWrite:
    def run_rdma(self, length=256 * 1024, corrupt_rkey=False):
        cluster, (a, pa, buf_a, pd_a, qa), (b, pb, buf_b, pd_b, qb), cqs = make_pair()
        k = cluster.kernel
        got = {}

        def target():
            mr = yield from b.hca.register_memory(pb.aspace, pd_b, buf_b, MB)
            rkey = 0xBAD if corrupt_rkey else mr.rkey
            k.process(initiator(rkey))
            got["mr"] = mr

        def initiator(rkey):
            mr = yield from a.hca.register_memory(pa.aspace, pd_a, buf_a, MB)
            yield from a.hca.post_send(
                qa,
                SendWR(
                    wr_id=9,
                    sges=[SGE(buf_a, length, mr.lkey)],
                    opcode="rdma_write",
                    remote_addr=buf_b,
                    rkey=rkey,
                    payload="RDMA-PAYLOAD",
                ),
            )
            wc = yield from a.hca.wait_completion(cqs["sa"])
            got["status"] = wc.status

        k.process(target())
        k.run()
        return cluster, b, got

    def test_payload_lands_at_target(self):
        _, b, got = self.run_rdma()
        key = (got["mr"].rkey, list(b.hca.rdma_landed)[0][1])
        assert b.hca.rdma_landed[key] == "RDMA-PAYLOAD"
        assert got["status"] == "success"

    def test_no_remote_cqe_for_rdma_write(self):
        cluster, b, _ = self.run_rdma()
        # the target's recv CQ stays empty: RDMA write is one-sided
        for node in cluster.nodes:
            pass
        # (the recv CQ used by the target belongs to qb)
        assert b.hca.counters["hca.rx_messages"] == 1

    def test_bad_rkey_fails_remotely(self):
        _, b, got = self.run_rdma(corrupt_rkey=True)
        assert got["status"] == "remote-access-error"
        assert not b.hca.rdma_landed


class TestBandwidthShapes:
    def _steady_bw(self, spec, size, hugepage_buffers):
        from repro.mem.physical import PAGE_2M, PAGE_4K

        cluster = Cluster(spec, 2)
        k = cluster.kernel
        a, b = cluster.nodes
        pa, pb = a.new_process(), b.new_process()
        ps = PAGE_2M if hugepage_buffers else PAGE_4K
        src = pa.aspace.mmap(size, page_size=ps).start
        dst = pb.aspace.mmap(size, page_size=ps).start
        pd_a, pd_b = ProtectionDomain.fresh(), ProtectionDomain.fresh()
        sa, ra, sb, rb = (CompletionQueue(k) for _ in range(4))
        qa = a.hca.create_qp(pd_a, sa, ra)
        qb = b.hca.create_qp(pd_b, sb, rb)
        HCA.connect_pair(qa, a.hca, qb, b.hca)
        out = {}

        def run():
            mr_dst = yield from b.hca.register_memory(pb.aspace, pd_b, dst, size)
            mr_src = yield from a.hca.register_memory(pa.aspace, pd_a, src, size)
            for i in range(3):
                t0 = k.now
                yield from a.hca.post_send(
                    qa,
                    SendWR(wr_id=i, sges=[SGE(src, size, mr_src.lkey)],
                           opcode="rdma_write", remote_addr=dst, rkey=mr_dst.rkey),
                )
                yield from a.hca.wait_completion(sa)
                out["ticks"] = k.now - t0

        k.process(run())
        k.run()
        return cluster.clock.bandwidth_mb_s(size, out["ticks"])

    def test_opteron_link_limited_either_page_size(self):
        """PCIe slack hides ATT stalls: hugepages change nothing (§5.1)."""
        small = self._steady_bw(presets.opteron_infinihost_pcie(), 4 * MB, False)
        huge = self._steady_bw(presets.opteron_infinihost_pcie(), 4 * MB, True)
        assert small == pytest.approx(huge, rel=0.01)
        assert small > 850  # near the 940 MB/s link

    def test_xeon_att_gain_with_patched_driver(self):
        """PCI-X is the bottleneck; 2 MB translations buy ~5 % (§5.1:
        'increased up to 6 %')."""
        stock = self._steady_bw(
            presets.xeon_infinihost_pcix(hugepage_aware_driver=False), 4 * MB, True
        )
        patched = self._steady_bw(
            presets.xeon_infinihost_pcix(hugepage_aware_driver=True), 4 * MB, True
        )
        gain = (patched - stock) / stock * 100
        assert 2.0 < gain < 8.0
