"""Cross-layer invariant auditor: clean on healthy runs, and every
seeded corruption class is detected with a debuggable violation."""

import heapq

import pytest

from repro.audit import (
    AuditError,
    Violation,
    assert_clean,
    audit_cluster,
    audit_kernel,
    render,
)
from repro.core.library import preload_hugepage_library
from repro.faults import FaultPlan
from repro.ib.hca import HCA
from repro.ib.verbs import CompletionQueue, ProtectionDomain
from repro.mem.paging import PAGE_4K
from repro.systems import Cluster, presets
from repro.workloads.imb import SendRecvBenchmark
from repro.workloads.nas import KERNELS
from repro.workloads.nas.common import run_nas

KB = 1024
MB = 1024 * 1024


def _checks(violations):
    return {v.check for v in violations}


def _mr_cluster():
    """A 2-node cluster with one registered MR on node 0, quiesced."""
    cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
    node = cluster.nodes[0]
    proc = node.new_process()
    buf = proc.aspace.mmap(MB).start
    mrs = {}

    def register():
        mrs["mr"] = yield from node.hca.register_memory(
            proc.aspace, ProtectionDomain.fresh(), buf, MB
        )

    cluster.kernel.process(register())
    cluster.kernel.run()
    return cluster, node, proc, buf, mrs["mr"]


class TestCleanOnHealthyRuns:
    def test_fig5_benchmark_audits_clean(self):
        bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
        bench.run([4 * KB, 64 * KB], hugepages=True, lazy_dereg=True,
                  iterations=2, warmup=1)
        assert audit_cluster(bench.last_cluster) == []

    def test_nas_ep_audits_clean(self):
        sink = []
        run_nas(KERNELS["EP"], presets.opteron_infinihost_pcie(),
                hugepages=True, klass="W", ppn=2, nas_hugepage_pool=720,
                cluster_sink=sink)
        assert audit_cluster(sink[0]) == []

    def test_faulted_run_audits_clean(self):
        bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
        bench.run([4 * KB], hugepages=False, lazy_dereg=True,
                  iterations=2, warmup=1,
                  fault_plan=FaultPlan(seed=7, link_loss=0.02))
        assert_clean(bench.last_cluster)  # no raise

    def test_registered_mr_cluster_is_clean(self):
        cluster, *_ = _mr_cluster()
        assert audit_cluster(cluster) == []


class TestSeededCorruptionIsDetected:
    def test_unpinned_mr_page(self):
        cluster, node, proc, buf, mr = _mr_cluster()
        entries = list(proc.aspace.page_table.pages_in_range(buf, MB))
        entries[3].pin_count = 0  # DMA target silently unpinned
        violations = audit_cluster(cluster)
        assert "mr-pinning" in _checks(violations)
        v = next(v for v in violations if v.check == "mr-pinning")
        assert "not pinned" in v.message
        assert f"MR{mr.mr_id}" in v.location

    def test_stale_att_entry(self):
        cluster, node, proc, buf, mr = _mr_cluster()
        node.att._cache[(999999, 0)] = True  # translation for a dead MR
        node.att._cache[(mr.mr_id, mr.n_entries + 5)] = True  # out of range
        violations = audit_cluster(cluster)
        stale = [v for v in violations if v.check == "att-stale"]
        assert len(stale) == 2
        assert any("unknown or deregistered MR 999999" in v.message for v in stale)
        assert any("outside" in v.message for v in stale)

    def test_dangling_tlb_entry(self):
        cluster = Cluster(presets.opteron_infinihost_pcie(), 1)
        proc = cluster.nodes[0].new_process()
        vma = proc.aspace.mmap(64 * KB)
        # the TLB caches a translation the page table no longer has,
        # while the VMA is still live — a real use-after-unmap window
        proc.engine.tlb._arrays[PAGE_4K][vma.start] = True
        proc.aspace.page_table.leaf_table(PAGE_4K).pop(vma.start)
        violations = audit_cluster(cluster)
        assert "tlb-dangling" in _checks(violations)
        v = next(v for v in violations if v.check == "tlb-dangling")
        assert "no" in v.message and "PTE" in v.message

    def test_overlapping_free_blocks(self):
        from repro.alloc.freelist import CHUNK_SIZE, FreeExtent

        cluster = Cluster(presets.opteron_infinihost_pcie(), 1)
        proc = cluster.nodes[0].new_process()
        preload_hugepage_library(proc)
        lib = proc.allocator
        addr = proc.malloc(max(lib.config.cutoff_bytes, 64 * KB))
        assert addr in lib.management._live  # chunk-managed, not libc
        fl = lib.management.freelist
        fl.load_state(fl.dump_state() + [(addr, 1)])  # free extent over a live block
        violations = audit_cluster(cluster)
        assert "alloc-overlap" in _checks(violations)
        v = next(v for v in violations if v.check == "alloc-overlap")
        assert "overlaps live block" in v.message

    def test_libc_heap_overlap_and_linkage(self):
        cluster = Cluster(presets.opteron_infinihost_pcie(), 1)
        proc = cluster.nodes[0].new_process()
        proc.libc.malloc(4 * KB)
        proc.libc.malloc(4 * KB)
        blocks = sorted(proc.libc._blocks.values(), key=lambda b: b.addr)
        assert len(blocks) >= 2
        blocks[0].size = blocks[1].addr - blocks[0].addr + 64  # grows into neighbour
        checks = _checks(audit_cluster(cluster))
        assert "alloc-overlap" in checks

    def test_non_monotonic_event(self):
        cluster = Cluster(presets.opteron_infinihost_pcie(), 1)
        k = cluster.kernel

        def burn():
            yield k.timeout(100)

        k.process(burn())
        k.run()
        k._sched.push(k.now - 10, 1, 1, k.event())
        violations = audit_kernel(k)
        assert "event-heap" in _checks(violations)
        assert any("scheduled in the past" in v.message for v in violations)
        with pytest.raises(AuditError, match="event-heap"):
            assert_clean(cluster)
        k._sched.clear()

    def test_qp_slot_leak(self):
        cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
        a, b = cluster.nodes
        cq = {n: CompletionQueue(cluster.kernel) for n in range(4)}
        qa = a.hca.create_qp(ProtectionDomain.fresh(), cq[0], cq[1])
        qb = b.hca.create_qp(ProtectionDomain.fresh(), cq[2], cq[3])
        HCA.connect_pair(qa, a.hca, qb, b.hca)
        cluster.kernel.run()
        qa.wr_slots._in_use = qa.max_send_wr + 1
        violations = audit_cluster(cluster)
        assert "qp-balance" in _checks(violations)
        assert any("exceeds queue depth" in v.message for v in violations)


class TestRendering:
    def test_violation_renders_with_context(self):
        v = Violation(check="mr-pinning", location="node0/MR7",
                      message="page 0x1000 not pinned",
                      context={"lkey": "0x2000", "length": 4096})
        text = str(v)
        assert text.startswith("[mr-pinning] node0/MR7: page 0x1000 not pinned")
        assert "length=4096" in text and "lkey='0x2000'" in text
        assert render([v, v]).count("\n") == 1

    def test_audit_error_message_lists_violations(self):
        v = Violation(check="event-heap", location="k", message="bad")
        err = AuditError([v], label="demo")
        assert "audit of demo found 1 violation(s)" in str(err)
        assert "[event-heap]" in str(err)
