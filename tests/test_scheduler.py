"""Scheduler pinning: the calendar queue against the reference heap.

Four layers of guarantees:

- :class:`CalendarScheduler` unit behaviour — cross-bucket ordering,
  overflow migration, the rewind path, frame grouping;
- property-based equivalence (hypothesis): arbitrary entry streams and
  arbitrary kernel programs (timeouts, same-tick ties, urgent
  interrupts, zero-delay completions, far-horizon sleeps) dispatch in
  byte-identical order under ``heap`` and ``calendar``;
- same-tick fusion and urgent preemption of the live dispatch frame;
- the PR's kernel bugfix regressions: explicit event ownership
  (``hold``/``release`` instead of the refcount-recycling heuristic),
  ``run(until=...)`` never fast-forwarding past a drained queue, and
  pooled ``Timeout`` reset being indistinguishable from construction.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    SCHEDULERS,
    CalendarScheduler,
    Event,
    HeapScheduler,
    Interrupt,
    SimError,
    SimKernel,
    Timeout,
)
from repro.engine.core import NORMAL, URGENT
from repro.engine.sched import make_scheduler

#: one full lap of the default ring: 2048 buckets x 2**7 ticks
RING_HORIZON = 2048 << 7


@pytest.fixture(params=sorted(SCHEDULERS))
def kernel(request):
    """One kernel per registered scheduler — every test in this module
    that takes `kernel` runs under both."""
    return SimKernel(request.param)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_registry_kinds():
    assert make_scheduler("heap").kind == "heap"
    assert make_scheduler("calendar").kind == "calendar"
    assert SimKernel("calendar").scheduler_kind == "calendar"


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="unknown scheduler"):
        make_scheduler("splay")
    with pytest.raises(ValueError):
        SimKernel("splay")


def test_calendar_requires_power_of_two_buckets():
    with pytest.raises(ValueError, match="power of two"):
        CalendarScheduler(n_buckets=3)


# ---------------------------------------------------------------------------
# CalendarScheduler unit behaviour
# ---------------------------------------------------------------------------


class TestCalendarUnit:
    def test_orders_across_buckets(self):
        cal = CalendarScheduler()
        times = [513, 0, 128, 3, 129, 7000, 127, 512]
        for seq, when in enumerate(times):
            cal.push(when, NORMAL, seq, f"ev{seq}")
        assert len(cal) == len(times)
        popped = []
        while len(cal):
            when, prio, frame = cal.pop_frame()
            assert prio == NORMAL
            popped.extend((when, seq) for seq, _ in frame)
        assert popped == sorted((when, seq) for seq, when in enumerate(times))

    def test_frame_groups_key_equal_entries_in_seq_order(self):
        cal = CalendarScheduler()
        cal.push(40, NORMAL, 1, "a")
        cal.push(50, NORMAL, 2, "later")
        cal.push(40, NORMAL, 3, "b")
        cal.push(40, URGENT, 4, "urgent")
        when, prio, frame = cal.pop_frame()
        assert (when, prio) == (40, URGENT)
        assert frame == [(4, "urgent")]
        when, prio, frame = cal.pop_frame()
        assert (when, prio) == (40, NORMAL)
        assert frame == [(1, "a"), (3, "b")]
        assert cal.pop_frame() == (50, NORMAL, [(2, "later")])

    def test_far_events_overflow_then_migrate(self):
        cal = CalendarScheduler()
        far = RING_HORIZON + 12345
        cal.push(far, NORMAL, 1, "far")
        assert cal._overflow and cal._count == 0  # beyond the ring horizon
        cal.push(10, NORMAL, 2, "near")
        assert cal.peek_time() == 10
        assert cal.pop_frame() == (10, NORMAL, [(2, "near")])
        # popping the near event advances the cursor; the far entry now
        # fits the ring and must migrate out of the overflow heap
        assert cal.pop_frame() == (far, NORMAL, [(1, "far")])
        assert not cal._overflow and len(cal) == 0

    def test_drained_ring_jumps_to_overflow_minimum(self):
        cal = CalendarScheduler()
        cal.push(10_000_000, NORMAL, 1, "deep")
        cal.push(90_000_000, NORMAL, 2, "deeper")
        assert cal.peek_time() == 10_000_000
        assert cal.pop_frame()[2] == [(1, "deep")]
        assert cal.pop_frame()[2] == [(2, "deeper")]

    def test_push_below_cursor_rewinds(self):
        cal = CalendarScheduler()
        cal.push(10_000_000, NORMAL, 1, "deep")
        cal.push(10_000_400, NORMAL, 2, "deep2")
        assert cal.pop_frame()[2] == [(1, "deep")]
        # the cursor now sits at slot 10_000_000 >> 7; a push far below
        # it must rebuild the ring around the new minimum, keeping the
        # still-pending deep entry
        cal.push(5, NORMAL, 3, "early")
        assert cal.entries() == [
            (5, NORMAL, 3, "early"),
            (10_000_400, NORMAL, 2, "deep2"),
        ]
        assert cal.pop_frame() == (5, NORMAL, [(3, "early")])
        assert cal.pop_frame() == (10_000_400, NORMAL, [(2, "deep2")])

    def test_entries_and_clear(self):
        cal = CalendarScheduler()
        cal.push(99, NORMAL, 1, "x")
        cal.push(RING_HORIZON * 3, NORMAL, 2, "y")
        assert [e[0] for e in cal.entries()] == [99, RING_HORIZON * 3]
        cal.clear()
        assert len(cal) == 0
        assert cal.peek_time() is None
        assert cal.entries() == []


# ---------------------------------------------------------------------------
# property: heap and calendar are byte-identical
# ---------------------------------------------------------------------------

_entry_lists = st.lists(
    st.tuples(st.integers(0, 1 << 22), st.integers(0, 1)),
    min_size=1,
    max_size=200,
)


@settings(max_examples=100, deadline=None)
@given(_entry_lists)
def test_schedulers_pop_identical_frames(entries):
    heap, cal = HeapScheduler(), CalendarScheduler()
    for seq, (when, prio) in enumerate(entries):
        heap.push(when, prio, seq, seq)
        cal.push(when, prio, seq, seq)
    assert heap.entries() == cal.entries()
    while len(heap):
        assert heap.pop_frame() == cal.pop_frame()
    assert len(cal) == 0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.integers(0, 1 << 21), st.integers(0, 1)),
            st.tuples(st.just("pop"), st.just(0), st.just(0)),
        ),
        min_size=1,
        max_size=120,
    )
)
def test_interleaved_push_pop_equivalence(ops):
    """Pops interleaved with pushes — including pushes *below* entries
    already popped, which drives the calendar's rewind path."""
    heap, cal = HeapScheduler(), CalendarScheduler()
    seq = 0
    for op, when, prio in ops:
        if op == "push":
            seq += 1
            heap.push(when, prio, seq, seq)
            cal.push(when, prio, seq, seq)
        elif len(heap):
            assert heap.pop_frame() == cal.pop_frame()
    while len(heap):
        assert heap.pop_frame() == cal.pop_frame()
    assert len(cal) == 0


def _run_program(scheduler: str, ops):
    """Execute one op-list program and return its full dispatch log."""
    k = SimKernel(scheduler)
    log = []
    live = []
    interrupted = set()

    def sleeper(wid, delay):
        try:
            yield k.timeout(delay, value=wid)
            log.append(("wake", k.now, wid))
        except Interrupt as exc:
            log.append(("intr", k.now, wid, exc.cause))

    def waiter(ev, wid):
        try:
            value = yield ev
            log.append(("ok", k.now, wid, value))
        except RuntimeError:
            log.append(("err", k.now, wid))

    def driver():
        for wid, (kind, delay, gap) in enumerate(ops):
            if kind == 0:
                live.append(k.process(sleeper(wid, delay)))
            elif kind == 1:  # same-tick tie: two sleepers, one wake tick
                live.append(k.process(sleeper((wid, "a"), delay)))
                live.append(k.process(sleeper((wid, "b"), delay)))
            elif kind == 2:  # beyond the calendar ring horizon
                live.append(k.process(sleeper(wid, delay * 3000 + RING_HORIZON)))
            elif kind == 3:  # urgent interrupt of the oldest live sleeper
                target = next(
                    (p for p in live if p.is_alive and p not in interrupted),
                    None,
                )
                if target is not None:
                    interrupted.add(target)
                    target.interrupt(cause=wid)
            else:  # zero-delay completion racing the current frame
                ev = k.event()
                k.process(waiter(ev, wid))
                if delay % 2:
                    ev.fail(RuntimeError("boom"))
                else:
                    ev.succeed(value=wid)
            if gap:
                yield k.timeout(gap)
                log.append(("drv", k.now, wid))

    k.process(driver(), name="driver")
    k.run()
    log.append(("end", k.now))
    return log


_programs = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 400), st.integers(0, 50)),
    min_size=1,
    max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(_programs)
def test_heap_calendar_equivalent_programs(ops):
    assert _run_program("heap", ops) == _run_program("calendar", ops)


def test_heap_calendar_equivalent_reference_program():
    """A fixed program touching every op kind — runs without hypothesis
    so a plain ``pytest tests/test_scheduler.py`` still pins the kernels."""
    ops = [
        (0, 10, 5),
        (1, 7, 0),
        (4, 3, 2),
        (2, 100, 1),
        (3, 0, 4),
        (1, 0, 0),
        (4, 2, 9),
        (3, 0, 0),
        (0, 0, 30),
        (2, 1, 0),
    ]
    heap_log = _run_program("heap", ops)
    assert heap_log == _run_program("calendar", ops)
    assert len(heap_log) > 10  # the program actually did something


# ---------------------------------------------------------------------------
# same-tick fusion and urgent preemption
# ---------------------------------------------------------------------------


def test_same_tick_cascade_fuses_into_one_frame(kernel):
    done = []

    def chain(n):
        for _ in range(n):
            yield kernel.timeout(0)
        done.append(kernel.now)

    kernel.process(chain(10))
    kernel.run()
    assert done == [0]
    # one URGENT frame (the Initialize) plus one NORMAL frame holding
    # all ten zero-delay timeouts and the process-completion event —
    # fusion keeps the scheduler out of the cascade entirely
    assert kernel._frames == 2
    assert kernel._events == 12


def test_urgent_preempts_live_frame(kernel):
    order = []

    def a():
        yield kernel.timeout(5)
        order.append("A")
        ev = kernel.event()
        ev._triggered = True
        ev.callbacks.append(lambda _ev: order.append("U"))
        kernel._schedule(ev, 0, URGENT)

    def b():
        yield kernel.timeout(5)
        order.append("B")

    kernel.process(a())
    kernel.process(b())
    kernel.run()
    # the urgent event outranks the rest of the tick-5 NORMAL frame: B's
    # wake is requeued and runs after it
    assert order == ["A", "U", "B"]


def test_fused_events_observe_monotonic_clock(kernel):
    stamps = []

    def p(delay):
        yield kernel.timeout(delay)
        stamps.append(kernel.now)
        yield kernel.timeout(0)
        stamps.append(kernel.now)

    kernel.process(p(3))
    kernel.process(p(3))
    kernel.run()
    assert stamps == [3, 3, 3, 3]


# ---------------------------------------------------------------------------
# regression: explicit event ownership (hold/release)
# ---------------------------------------------------------------------------


class TestEventOwnership:
    """The seed kernel recycled any event whose ``sys.getrefcount``
    dropped to 2 — a heuristic that broke the moment a callback stashed
    the event somewhere the counter couldn't see (a closure cell, a C
    extension, a debugger).  The kernel now recycles on an explicit
    ``_holds`` count; these tests pin both directions of that contract
    and fail on the heuristic kernel."""

    def test_unheld_kernel_events_are_recycled(self, kernel):
        ev = kernel.timeout(3)
        kernel.run()
        # LIFO pool: the spent timeout is reissued even though this
        # frame still holds a local reference to it (the refcount
        # heuristic would have refused — `ev` keeps the count above 2)
        assert kernel.timeout(1) is ev

    def test_held_event_value_survives_pool_churn(self, kernel):
        held = []
        first = kernel.timeout(5, value="original")
        first.callbacks.append(lambda ev: held.append(ev.hold()))
        kernel.run()

        def churn():
            for i in range(3 * SimKernel._POOL_MAX):
                yield kernel.timeout(1, value=("churn", i))

        kernel.process(churn())
        kernel.run()
        [ev] = held
        assert ev is first
        assert ev.value == "original"  # heuristic kernel: clobbered by reuse
        ev.release()
        # released and processed: back in the pool, reissued next
        assert kernel.timeout(1) is ev

    def test_release_without_hold_raises(self, kernel):
        ev = kernel.timeout(1)  # kernel-owned: zero holds to give back
        with pytest.raises(SimError, match="release"):
            ev.release()

    def test_directly_constructed_events_are_creator_owned(self, kernel):
        ev = Event(kernel)
        ev.succeed(value=7)
        kernel.run()
        assert ev.value == 7
        assert kernel.event() is not ev

    def test_pools_are_bounded(self, kernel):
        for _ in range(2 * SimKernel._POOL_MAX):
            kernel.timeout(1)
        kernel.run()
        assert len(kernel._timeout_pool) <= SimKernel._POOL_MAX


# ---------------------------------------------------------------------------
# regression: run(until=...) vs a drained queue
# ---------------------------------------------------------------------------


class TestRunUntil:
    """``run(until=T)`` used to fast-forward the clock to T even when
    the queue drained earlier — so a checkpoint taken afterwards stamped
    a tick no event ever reached."""

    def test_clock_stays_at_drain_time(self, kernel):
        def p():
            yield kernel.timeout(10)

        kernel.process(p())
        kernel.run(until=1000)
        assert kernel.now == 10  # not 1000

    def test_clock_advances_to_until_when_work_remains(self, kernel):
        kernel.timeout(10)
        kernel.timeout(2000)
        kernel.run(until=1000)
        assert kernel.now == 1000
        assert kernel.peek() == 2000

    def test_until_in_past_raises(self, kernel):
        kernel.timeout(5)
        kernel.run()
        with pytest.raises(SimError, match="in the past"):
            kernel.run(until=2)

    def test_resume_after_early_stop(self, kernel):
        order = []

        def p():
            yield kernel.timeout(10)
            order.append(kernel.now)
            yield kernel.timeout(2000)
            order.append(kernel.now)

        kernel.process(p())
        kernel.run(until=1000)
        assert kernel.now == 1000
        kernel.run()
        assert order == [10, 2010]

    def test_spawn_after_early_stop(self, kernel):
        """New work scheduled below the stopped scan point — on the
        calendar this pushes below the advanced cursor and must rewind."""
        hits = []

        def late():
            yield kernel.timeout(2000)
            hits.append(kernel.now)

        kernel.process(late())
        kernel.run(until=1000)
        assert kernel.now == 1000

        def early():
            yield kernel.timeout(5)
            hits.append(kernel.now)

        kernel.process(early())
        kernel.run()
        assert hits == [1005, 2000]


# ---------------------------------------------------------------------------
# property: pooled Timeouts are indistinguishable from fresh ones
# ---------------------------------------------------------------------------

_churn_ops = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 7)),
    min_size=1,
    max_size=40,
)


@settings(max_examples=100, deadline=None)
@given(_churn_ops, st.integers(0, 5), st.booleans())
def test_recycled_timeout_indistinguishable_from_fresh(ops, delay, use_value):
    """Drive the pool through varied lifecycles — plain fires, waited
    timeouts, interrupted waits, failed events, held survivors — then
    check the next factory timeout against a from-scratch construction."""
    k = SimKernel()
    for kind, d in ops:
        if kind == 0:
            k.timeout(d, value=("plain", d))
        elif kind == 1:
            def sleep(d=d):
                try:
                    yield k.timeout(d)
                except Interrupt:
                    pass

            proc = k.process(sleep())
            if d % 2:
                proc.interrupt(cause="churn")
        elif kind == 2:
            ev = k.event()

            def wait(ev=ev):
                try:
                    yield ev
                except RuntimeError:
                    pass

            k.process(wait())
            if d % 2:
                ev.fail(RuntimeError("churn"))
            else:
                ev.succeed(value=d)
        else:
            k.timeout(d, value="held").hold()  # never recycled
        k.run()

    value = ("fresh", delay) if use_value else None
    pooled = k.timeout(delay, value)
    fresh = Timeout(SimKernel(), delay, value)
    assert type(pooled) is Timeout
    for attr in ("delay", "_value", "_ok", "_triggered", "_processed"):
        assert getattr(pooled, attr) == getattr(fresh, attr), attr
    assert pooled.callbacks == []
    assert pooled._holds == 0  # factory events are kernel-owned


def test_pooled_timeout_rejects_negative_delay(kernel):
    kernel.timeout(1)
    kernel.run()
    assert kernel._timeout_pool  # the pooled path is the one under test
    with pytest.raises(SimError, match="negative"):
        kernel.timeout(-1)
