"""Allocator conformance: one behavioural contract, all four allocators.

Every allocator in the package must satisfy the same malloc/free/
calloc/realloc contract regardless of its placement policy — this suite
runs the contract against libc, the hugepage library, libhugetlbfs and
libhugepagealloc in one parameterised sweep.
"""

import pytest

from repro.alloc import (
    AllocationError,
    HugepageLibraryAllocator,
    LibcAllocator,
    LibhugepageallocAllocator,
    LibhugetlbfsAllocator,
)
from repro.mem import AddressSpace, HugeTLBfs, PhysicalMemory

KB = 1024
MB = 1024 * 1024

ALLOCATORS = [
    LibcAllocator,
    HugepageLibraryAllocator,
    LibhugetlbfsAllocator,
    LibhugepageallocAllocator,
]


@pytest.fixture(params=ALLOCATORS, ids=lambda c: c.name)
def allocator(request):
    pm = PhysicalMemory(1024 * MB, hugepages=256)
    aspace = AddressSpace(pm, HugeTLBfs(pm))
    return request.param(aspace)


class TestContract:
    def test_malloc_returns_mapped_memory(self, allocator):
        p = allocator.malloc(100 * KB)
        paddr, page_size = allocator.aspace.translate(p)
        assert paddr >= 0 and page_size in (4096, 2 * MB)

    def test_distinct_pointers(self, allocator):
        ptrs = [allocator.malloc(64 * KB) for _ in range(10)]
        assert len(set(ptrs)) == 10

    def test_no_overlap(self, allocator):
        spans = []
        for size in (8 * KB, 64 * KB, 1 * MB, 100, 256 * KB):
            p = allocator.malloc(size)
            spans.append((p, p + size))
        spans.sort()
        for (a0, a1), (b0, _b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_free_then_stats_balanced(self, allocator):
        ptrs = [allocator.malloc(32 * KB) for _ in range(5)]
        for p in ptrs:
            allocator.free(p)
        assert allocator.stats.current_bytes == 0
        assert allocator.live_allocations == 0
        assert allocator.stats.mallocs == allocator.stats.frees == 5

    def test_double_free_rejected(self, allocator):
        p = allocator.malloc(64 * KB)
        allocator.free(p)
        with pytest.raises(AllocationError):
            allocator.free(p)

    def test_unknown_pointer_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.free(0xDEADBEEF000)

    def test_zero_size_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.malloc(0)

    def test_calloc_costs_more_than_malloc(self, allocator):
        before = allocator.stats.malloc_ns
        allocator.calloc(64, 16 * KB)
        calloc_ns = allocator.stats.malloc_ns - before
        before = allocator.stats.malloc_ns
        allocator.malloc(1 * MB)
        malloc_ns = allocator.stats.malloc_ns - before
        assert calloc_ns > malloc_ns

    def test_realloc_moves_accounting(self, allocator):
        p = allocator.malloc(64 * KB)
        q = allocator.realloc(p, 256 * KB)
        assert allocator.allocation_size(q) == 256 * KB
        assert allocator.stats.current_bytes == 256 * KB
        allocator.free(q)
        assert allocator.stats.current_bytes == 0

    def test_costs_accumulate(self, allocator):
        p = allocator.malloc(512 * KB)
        allocator.free(p)
        assert allocator.stats.malloc_ns > 0
        assert allocator.stats.free_ns > 0

    def test_counters_emitted(self, allocator):
        p = allocator.malloc(64 * KB)
        allocator.free(p)
        assert allocator.counters[f"alloc.{allocator.name}.malloc"] >= 1
        assert allocator.counters[f"alloc.{allocator.name}.free"] >= 1

    def test_survives_interleaved_churn(self, allocator):
        import numpy as np

        rng = np.random.default_rng(7)
        live = []
        for i in range(100):
            if live and rng.random() < 0.4:
                allocator.free(live.pop(int(rng.integers(0, len(live)))))
            else:
                live.append(allocator.malloc(int(rng.integers(64, 2 * MB))))
        for p in live:
            allocator.free(p)
        assert allocator.stats.current_bytes == 0
