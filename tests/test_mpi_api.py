"""Integration tests for the MPI layer (repro.mpi.api)."""

import numpy as np
import pytest

from repro.mpi import MPIConfig, MPIWorld
from repro.systems import Cluster, presets

KB = 1024
MB = 1024 * 1024


def make_world(ppn=2, n_nodes=2, **cfg):
    cluster = Cluster(presets.opteron_infinihost_pcie(), n_nodes=n_nodes)
    return MPIWorld(cluster, ppn=ppn, config=MPIConfig(**cfg))


class TestWorldSetup:
    def test_block_placement(self):
        world = make_world(ppn=4)
        assert world.size == 8
        assert world.node_of(0) == 0
        assert world.node_of(3) == 0
        assert world.node_of(4) == 1

    def test_qps_only_between_nodes(self):
        world = make_world(ppn=2)
        assert 1 not in world.endpoint(0).qps  # same node: shared memory
        assert 2 in world.endpoint(0).qps
        assert 3 in world.endpoint(0).qps

    def test_invalid_rank(self):
        world = make_world()
        with pytest.raises(ValueError):
            world.node_of(99)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MPIConfig(eager_threshold=64 * KB, eager_buf_bytes=16 * KB)
        with pytest.raises(ValueError):
            MPIConfig(rdma_threshold=1024, eager_threshold=8192)


class TestPointToPoint:
    @pytest.mark.parametrize("size,label", [
        (512, "eager"),
        (12 * KB, "copy-rendezvous"),
        (256 * KB, "rdma-rendezvous"),
    ])
    def test_internode_payload_delivery(self, size, label):
        world = make_world(ppn=1)

        def program(comm):
            buf = comm.proc.malloc(MB)
            if comm.rank == 0:
                data = np.arange(100, dtype=np.float64)
                yield from comm.send(1, 42, size, addr=buf, payload=data)
                return None
            payload, got_size, src, tag = yield from comm.recv(0, 42, addr=buf)
            return (payload, got_size, src, tag)

        results = world.run(program)
        payload, got_size, src, tag = results[1].value
        assert np.array_equal(payload, np.arange(100, dtype=np.float64))
        assert got_size == size
        assert (src, tag) == (0, 42)

    def test_intranode_delivery(self):
        world = make_world(ppn=2, n_nodes=1)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, 7, 100 * KB, payload="local")
                return None
            payload, *_ = yield from comm.recv(0, 7)
            return payload

        results = world.run(program)
        assert results[1].value == "local"

    def test_any_source_recv(self):
        world = make_world(ppn=1)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, 5, 64, payload="x")
                return None
            payload, _, src, _ = yield from comm.recv(source=None, tag=5)
            return src

        results = world.run(program)
        assert results[1].value == 0

    def test_tag_matching_out_of_order(self):
        """A posted receive for tag B must not steal the tag-A message."""
        world = make_world(ppn=1)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, 1, 64, payload="first")
                yield from comm.send(1, 2, 64, payload="second")
                return None
            p2, *_ = yield from comm.recv(0, 2)
            p1, *_ = yield from comm.recv(0, 1)
            return (p1, p2)

        results = world.run(program)
        assert results[1].value == ("first", "second")

    def test_sendrecv_no_deadlock_on_exchange(self):
        world = make_world(ppn=1)

        def program(comm):
            other = 1 - comm.rank
            buf = comm.proc.malloc(MB)
            res = yield from comm.sendrecv(
                other, 9, 128 * KB, source=other, recvtag=9,
                send_addr=buf, recv_addr=buf + 512 * KB,
                payload=f"from{comm.rank}",
            )
            return res[0]

        results = world.run(program)
        assert results[0].value == "from1"
        assert results[1].value == "from0"

    def test_rdma_recv_without_buffer_raises(self):
        world = make_world(ppn=1)

        def program(comm):
            buf = comm.proc.malloc(MB)
            if comm.rank == 0:
                yield from comm.send(1, 3, 256 * KB, addr=buf)
                return None
            yield from comm.recv(0, 3, addr=None)

        with pytest.raises(ValueError, match="receive buffer"):
            world.run(program)

    def test_send_to_self_rejected(self):
        world = make_world(ppn=1)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(0, 1, 8)
            return None
            yield

        with pytest.raises(ValueError):
            world.run(program)


class TestLazyDereg:
    def _run(self, lazy):
        world = make_world(ppn=1, lazy_dereg=lazy)
        stats = {}

        def program(comm):
            other = 1 - comm.rank
            buf = comm.proc.malloc(MB)
            t0 = comm.kernel.now
            for i in range(4):
                yield from comm.sendrecv(
                    other, 11, 512 * KB, source=other, recvtag=11,
                    send_addr=buf, recv_addr=buf + 512 * KB,
                )
            if comm.rank == 0:
                stats["ticks"] = comm.kernel.now - t0
                stats["hits"] = comm.endpoint.regcache.hits
                stats["misses"] = comm.endpoint.regcache.misses
            return None

        world.run(program)
        return stats

    def test_cache_hits_after_first_iteration(self):
        stats = self._run(lazy=True)
        assert stats["misses"] <= 2  # first send + first recv ranges
        assert stats["hits"] >= 6

    def test_disabled_cache_registers_every_time(self):
        stats = self._run(lazy=False)
        assert stats["hits"] == 0
        assert stats["misses"] >= 8

    def test_lazy_dereg_is_faster(self):
        """Fig 5's two cases: the registration overhead per message."""
        t_lazy = self._run(lazy=True)["ticks"]
        t_eager = self._run(lazy=False)["ticks"]
        assert t_eager > 1.05 * t_lazy


class TestProfiler:
    def test_comm_compute_split(self):
        world = make_world(ppn=1)

        def program(comm):
            yield from comm.compute_ticks(10_000)
            other = 1 - comm.rank
            buf = comm.proc.malloc(MB)
            yield from comm.sendrecv(other, 1, 64 * KB, source=other,
                                     recvtag=1, send_addr=buf,
                                     recv_addr=buf + 512 * KB)
            return None

        results = world.run(program)
        prof = results[0].profiler
        assert prof.compute_ticks >= 10_000
        assert prof.comm_ticks > 0
        assert "MPI_Sendrecv" in prof.summary()
        assert prof.app_ticks >= prof.comm_ticks

    def test_deadlock_detection(self):
        world = make_world(ppn=1)

        def program(comm):
            # everyone receives, nobody sends
            yield from comm.recv(source=None, tag=99)

        with pytest.raises(RuntimeError, match="did not finish"):
            world.run(program)
