"""Tests for the public core API (placement, library preload, SGE plans)."""

import pytest

from repro.alloc.hugepage_lib import HugepageLibraryConfig
from repro.core import (
    AggregationStrategy,
    BufferPlacer,
    PlacementConfig,
    PlacementPolicy,
    plan_aggregation,
    preload_hugepage_library,
)
from repro.engine import SimKernel
from repro.mem.physical import PAGE_2M, PAGE_4K
from repro.systems import Machine, presets

KB = 1024
MB = 1024 * 1024


@pytest.fixture
def proc():
    machine = Machine(SimKernel(), presets.opteron_infinihost_pcie())
    return machine.new_process()


class TestPlacementConfig:
    def test_defaults_follow_paper(self):
        cfg = PlacementConfig()
        assert cfg.small_buffer_offset == 64  # §4's sweet spot
        assert cfg.sge_aggregation_limit == 128  # §4's "up to 128 Byte"
        assert cfg.library.cutoff_bytes == 32 * KB

    def test_validation(self):
        with pytest.raises(ValueError):
            PlacementConfig(small_buffer_offset=5000)
        with pytest.raises(ValueError):
            PlacementConfig(sge_aggregation_limit=0)


class TestPreload:
    def test_preload_swaps_allocator(self, proc):
        handle = preload_hugepage_library(proc)
        assert proc.allocator is handle.allocator
        p = proc.malloc(1 * MB)
        assert handle.allocator.is_hugepage_backed(p)

    def test_preload_is_idempotent(self, proc):
        h1 = preload_hugepage_library(proc)
        h2 = preload_hugepage_library(proc)
        assert h1.allocator is h2.allocator

    def test_existing_allocations_still_freeable(self, proc):
        before = proc.malloc(1 * MB)  # via libc
        preload_hugepage_library(proc)
        proc.free(before)  # routed back to libc
        assert proc.libc.live_allocations == 0

    def test_unload_restores_libc(self, proc):
        handle = preload_hugepage_library(proc)
        handle.unload()
        assert proc.allocator is proc.libc

    def test_custom_config(self, proc):
        handle = preload_hugepage_library(
            proc, HugepageLibraryConfig(cutoff_bytes=8 * KB)
        )
        assert handle.allocator.is_hugepage_backed(proc.malloc(8 * KB))


class TestBufferPlacer:
    def test_policies(self, proc):
        placer = BufferPlacer(proc)
        assert placer.place(1 * MB, PlacementPolicy.SMALL_PAGES).page_size == PAGE_4K
        assert placer.place(1 * KB, PlacementPolicy.HUGE_PAGES).page_size == PAGE_2M
        assert placer.place(32 * KB, PlacementPolicy.SIZE_BASED).page_size == PAGE_2M
        assert placer.place(31 * KB, PlacementPolicy.SIZE_BASED).page_size == PAGE_4K

    def test_default_offset_for_small_buffers(self, proc):
        placer = BufferPlacer(proc)
        buf = placer.place(64)
        assert buf.offset_in_page == 64

    def test_explicit_offset(self, proc):
        placer = BufferPlacer(proc)
        buf = placer.place(64, offset=96)
        assert buf.offset_in_page == 96

    def test_release(self, proc):
        placer = BufferPlacer(proc)
        buf = placer.place(4 * KB)
        placer.release(buf)
        assert placer.live_buffers == 0
        with pytest.raises(ValueError):
            placer.release(buf)

    def test_validation(self, proc):
        placer = BufferPlacer(proc)
        with pytest.raises(ValueError):
            placer.place(0)
        with pytest.raises(ValueError):
            placer.place(64, offset=4096)


class TestAggregationPlanner:
    def test_many_small_buffers_prefer_sge(self):
        plan = plan_aggregation([64] * 8)
        assert plan.strategy is AggregationStrategy.SGE_LIST

    def test_single_buffer_anything_but_separate_overhead(self):
        plan = plan_aggregation([64])
        # with one buffer all strategies collapse; separate==sge here
        assert plan.n_buffers == 1

    def test_sge_beats_separate_for_batches(self):
        plan = plan_aggregation([128] * 4)
        est = plan.estimated_ns
        assert est["sge"] < est["separate"]

    def test_cpu_pack_wins_for_very_cheap_copies(self):
        plan = plan_aggregation([16] * 4, copy_ns_per_byte=0.0001)
        assert plan.estimated_ns["pack"] < plan.estimated_ns["separate"]

    def test_max_sge_splits_batches(self):
        plan = plan_aggregation([32] * 300, max_sge=128)
        # 300 buffers -> 3 work requests in SGE mode; still beats 300
        assert plan.estimated_ns["sge"] < plan.estimated_ns["separate"]

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_aggregation([])
        with pytest.raises(ValueError):
            plan_aggregation([0])

    def test_plan_matches_simulated_hca(self):
        """The planner's 'SGE beats separate sends' verdict must agree
        with the actual simulated verbs measurements."""
        from repro.workloads.verbs_micro import measure_send

        one = measure_send(sges=1, sge_size=64)
        four = measure_send(sges=4, sge_size=64)
        # four separate sends cost ~4x one; one 4-SGE request costs ~1.1x
        assert four.total_ticks < 2 * one.total_ticks
