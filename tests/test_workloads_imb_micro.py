"""Tests for the IMB SendRecv and verbs-microbenchmark workloads."""

import pytest

from repro.systems import presets
from repro.workloads.imb import SendRecvBenchmark
from repro.workloads.verbs_micro import measure_send, sweep_offsets, sweep_sges

KB = 1024
MB = 1024 * 1024


@pytest.fixture(scope="module")
def opteron_sweeps():
    """One IMB sweep per configuration (module-scoped: they are the
    expensive part of this file)."""
    bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
    sizes = [1 * KB, 8 * KB, 64 * KB, 1 * MB, 4 * MB]
    return {
        (hp, lazy): bench.run(sizes, hugepages=hp, lazy_dereg=lazy)
        for hp in (False, True)
        for lazy in (True, False)
    }


class TestIMBSendRecv:
    def test_bandwidth_monotone_in_size(self, opteron_sweeps):
        rows = opteron_sweeps[(False, True)].rows
        bws = [r.bandwidth_mb_s for r in rows]
        assert bws == sorted(bws)

    def test_peak_near_bidirectional_link(self, opteron_sweeps):
        """Fig 5 peaks near 1750 MB/s (2x the ~940 MB/s link)."""
        peak = opteron_sweeps[(True, True)].bandwidth_at(4 * MB)
        assert 1600 < peak < 1900

    def test_lazy_dereg_parity_on_opteron(self, opteron_sweeps):
        """§5.1 case 2: 'The results show the same numbers for small
        pages as for hugepages' with lazy deregistration on."""
        small = opteron_sweeps[(False, True)].bandwidth_at(4 * MB)
        huge = opteron_sweeps[(True, True)].bandwidth_at(4 * MB)
        assert abs(small - huge) / small < 0.02

    def test_registration_hurts_small_pages(self, opteron_sweeps):
        """§5.1 case 1: with lazy dereg off, small pages pay registration
        on every message above the RDMA threshold."""
        with_cache = opteron_sweeps[(False, True)].bandwidth_at(4 * MB)
        without = opteron_sweeps[(False, False)].bandwidth_at(4 * MB)
        assert without < 0.92 * with_cache

    def test_hugepages_rescue_no_cache_case(self, opteron_sweeps):
        """§5.1: 'With hugepage mapped buffers greater than 4 MB size, we
        almost reach the maximum bandwidth.'"""
        huge_nocache = opteron_sweeps[(True, False)].bandwidth_at(4 * MB)
        peak = opteron_sweeps[(True, True)].bandwidth_at(4 * MB)
        assert huge_nocache > 0.95 * peak

    def test_no_registration_effect_below_rdma_threshold(self, opteron_sweeps):
        """'For buffers larger than 16 KB, it uses the RDMA feature ...
        so we only see memory registration effects for those buffers.'"""
        at_8k_cache = opteron_sweeps[(False, True)].bandwidth_at(8 * KB)
        at_8k_nocache = opteron_sweeps[(False, False)].bandwidth_at(8 * KB)
        assert at_8k_cache == pytest.approx(at_8k_nocache, rel=0.01)

    def test_validation(self):
        bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
        with pytest.raises(ValueError):
            bench.run([], hugepages=False, lazy_dereg=True)
        with pytest.raises(ValueError):
            SendRecvBenchmark(presets.opteron_infinihost_pcie, n_nodes=4)


class TestVerbsMicro:
    def test_post_constant_over_sizes(self):
        """'The time consumption of post operations is approximately
        constant for small and for large messages (1 byte - 64 kbytes)'"""
        posts = [measure_send(sges=1, sge_size=s).post_ticks
                 for s in (1, 512, 4 * KB, 64 * KB)]
        assert max(posts) == min(posts)

    def test_post_in_paper_tick_range(self):
        """'varies between 230-950 TBR ticks'"""
        t = measure_send(sges=1, sge_size=64)
        assert 150 <= t.post_ticks <= 950
        t128 = measure_send(sges=128, sge_size=64)
        assert t128.post_ticks <= 950

    def test_128_sges_post_about_3x(self):
        """'the time consumption by using 128 SGEs is only three times
        higher than with one SGE'"""
        one = measure_send(sges=1, sge_size=64).post_ticks
        many = measure_send(sges=128, sge_size=64).post_ticks
        assert 2.0 < many / one < 4.0

    def test_4_sges_at_most_14_percent(self):
        """'up to 128 Byte, the sending of 4 SGEs with same sizes ... is
        only 14 % more costly'"""
        for size in (8, 64, 128):
            one = measure_send(sges=1, sge_size=size).total_ticks
            four = measure_send(sges=4, sge_size=size).total_ticks
            assert four / one < 1.16

    def test_1sge_constant_then_linear(self):
        """'The outlay for 1 SGE is relatively constant up to 512 Bytes
        and then grows linearly with buffer size.'"""
        t1 = measure_send(sges=1, sge_size=1).total_ticks
        t512 = measure_send(sges=1, sge_size=512).total_ticks
        t64k = measure_send(sges=1, sge_size=64 * KB).total_ticks
        t32k = measure_send(sges=1, sge_size=32 * KB).total_ticks
        assert t512 / t1 < 1.25  # constant-ish
        assert 1.7 < t64k / t32k < 2.3  # linear regime

    def test_offset_best_at_64(self):
        """Fig 4: 'optimized for certain offsets, e.g. at offset 64',
        with up to ~8 % variation over offsets 0-128."""
        results = sweep_offsets([64], list(range(0, 129, 16)) + [1, 63, 127])
        ticks = {off: t.total_ticks for (_, off), t in results.items()}
        best = min(ticks, key=ticks.get)
        assert best == 64
        swing = (max(ticks.values()) - min(ticks.values())) / max(ticks.values())
        assert 0.02 < swing < 0.10

    def test_sweep_sges_structure(self):
        results = sweep_sges([1, 2], [64])
        assert set(results) == {(1, 64), (2, 64)}

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_send(sges=0)
        with pytest.raises(ValueError):
            measure_send(offset=4096)
