"""Fault-injection subsystem: plans, the QP state machine, recovery.

Covers the ISSUE's acceptance demos: a rendezvous transfer over a lossy
link completing via retransmission, retry exhaustion surfacing as an
error CQE and a clean MPI exception (never a hang), mid-run hugepage
depletion degrading to base pages with identical results, and the
zero-plan bit-identical guarantee.
"""

import pytest

from repro.analysis.report import degradation_report
from repro.core.placement import BufferPlacer, PlacementPolicy
from repro.faults import (
    FaultInjector,
    FaultPlan,
    MPITransportError,
    PermanentRegistrationError,
    TransientRegistrationError,
)
from repro.ib.hca import HCA
from repro.ib.verbs import (
    SGE,
    CompletionQueue,
    IBVerbsError,
    ProtectionDomain,
    RecvWR,
    SendWR,
)
from repro.mpi.api import MPIConfig, MPIWorld
from repro.systems import Cluster, presets
from repro.systems.machine import Machine
from repro.engine import SimKernel

KB = 1024
MB = 1024 * 1024


# ---------------------------------------------------------------------------
# FaultPlan / FaultInjector units
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_default_plan_is_inert(self):
        assert not FaultPlan().active

    def test_any_knob_activates(self):
        assert FaultPlan(link_loss=0.01).active
        assert FaultPlan(link_corrupt=0.5).active
        assert FaultPlan(reg_transient=0.1).active
        assert FaultPlan(reg_permanent=0.1).active
        assert FaultPlan(hugepage_deplete_after=0).active

    def test_retry_knobs_alone_do_not_activate(self):
        # retry parameters without a fault source inject nothing
        assert not FaultPlan(retry_cnt=2, rnr_retry=3,
                             ack_timeout_ns=1000.0).active

    def test_from_spec(self):
        plan = FaultPlan.from_spec(
            "link_loss=0.01, reg_transient=0.2,retry_cnt=3", seed=7
        )
        assert plan.link_loss == 0.01
        assert plan.reg_transient == 0.2
        assert plan.retry_cnt == 3
        assert plan.seed == 7

    def test_from_spec_rejects_unknown_knob(self):
        with pytest.raises(ValueError, match="unknown fault knob"):
            FaultPlan.from_spec("packet_loss=0.1")

    def test_from_spec_rejects_malformed(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.from_spec("link_loss")

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(link_loss=1.5)
        with pytest.raises(ValueError):
            FaultPlan(rnr_retry=8)
        with pytest.raises(ValueError):
            FaultPlan(hugepage_deplete_after=-1)

    def test_with_seed(self):
        plan = FaultPlan(link_loss=0.5).with_seed(99)
        assert plan.seed == 99 and plan.link_loss == 0.5


class TestFaultInjector:
    def test_same_seed_same_decisions(self):
        a = FaultInjector(FaultPlan(link_loss=0.3, seed=5))
        b = FaultInjector(FaultPlan(link_loss=0.3, seed=5))
        assert [a.message_dropped(4) for _ in range(50)] == [
            b.message_dropped(4) for _ in range(50)
        ]

    def test_drop_counts(self):
        inj = FaultInjector(FaultPlan(link_loss=1.0))
        assert inj.message_dropped(1)
        assert inj.counters.get("faults.link.dropped") == 1

    def test_hugepage_depletion_is_permanent(self):
        inj = FaultInjector(FaultPlan(hugepage_deplete_after=2))
        assert [inj.hugepage_request_denied() for _ in range(5)] == [
            False, False, True, True, True
        ]
        assert inj.counters.get("faults.mem.hugepage_denied") == 3


# ---------------------------------------------------------------------------
# QP state machine (satellite: IBVerbsError messages name the state)
# ---------------------------------------------------------------------------
def _make_qp():
    k = SimKernel()
    pd = ProtectionDomain.fresh()
    from repro.ib.verbs import QueuePair

    return QueuePair(k, pd, CompletionQueue(k), CompletionQueue(k))


class TestQPStateMachine:
    def test_initial_state_is_reset(self):
        assert _make_qp().state == "RESET"

    def test_connect_reaches_rts(self):
        qp = _make_qp()
        qp.connect(object(), 42)
        assert qp.state == "RTS" and qp.connected

    def test_double_connect_raises(self):
        qp = _make_qp()
        qp.connect(object(), 42)
        with pytest.raises(IBVerbsError, match="already connected \\(RTS\\)"):
            qp.connect(object(), 43)

    def test_reconnect_after_reset_is_allowed(self):
        qp = _make_qp()
        qp.connect(object(), 42)
        qp.reset()
        assert qp.state == "RESET" and qp.peer_qp_num is None
        qp.connect(object(), 44)
        assert qp.peer_qp_num == 44

    def test_illegal_transition_names_both_states(self):
        qp = _make_qp()
        with pytest.raises(IBVerbsError, match="RESET -> RTS"):
            qp.modify("RTS")

    def test_unknown_state_rejected(self):
        with pytest.raises(IBVerbsError, match="unknown QP state"):
            _make_qp().modify("RTD")

    def test_sqe_recovers_to_rts(self):
        qp = _make_qp()
        qp.connect(object(), 42)
        qp.modify("SQE")
        assert not qp.connected
        qp.modify("RTS")
        assert qp.connected

    def test_post_send_error_names_state(self):
        cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
        node = cluster.nodes[0]
        pd = ProtectionDomain.fresh()
        k = cluster.kernel
        qp = node.hca.create_qp(pd, CompletionQueue(k), CompletionQueue(k))
        with pytest.raises(IBVerbsError, match="state RESET"):
            gen = node.hca.post_send(
                qp, SendWR(wr_id=1, sges=[SGE(0, 8, 0)])
            )
            next(gen)


# ---------------------------------------------------------------------------
# verbs-level recovery and exhaustion
# ---------------------------------------------------------------------------
def _verbs_pair(fault_plan):
    cluster = Cluster(presets.opteron_infinihost_pcie(), 2,
                      fault_plan=fault_plan)
    k = cluster.kernel
    a, b = cluster.nodes
    pa, pb = a.new_process(), b.new_process()
    buf_a = pa.aspace.mmap(MB).start
    buf_b = pb.aspace.mmap(MB).start
    pd_a, pd_b = ProtectionDomain.fresh(), ProtectionDomain.fresh()
    cqs = {name: CompletionQueue(k) for name in ("sa", "ra", "sb", "rb")}
    qa = a.hca.create_qp(pd_a, cqs["sa"], cqs["ra"])
    qb = b.hca.create_qp(pd_b, cqs["sb"], cqs["rb"])
    HCA.connect_pair(qa, a.hca, qb, b.hca)
    return cluster, (a, pa, buf_a, pd_a, qa), (b, pb, buf_b, pd_b, qb), cqs


class TestVerbsLevelFaults:
    def test_retry_exhaustion_yields_error_cqe_not_hang(self):
        """link_loss=1.0: nothing ever arrives; the sender must get a
        completion-with-error CQE after retry_cnt retransmissions and
        the QP must drain to SQE."""
        plan = FaultPlan(link_loss=1.0, retry_cnt=2, ack_timeout_ns=20_000.0)
        cluster, (a, pa, buf_a, pd_a, qa), _, cqs = _verbs_pair(plan)
        k = cluster.kernel
        got = {}

        def sender():
            mr = yield from a.hca.register_memory(pa.aspace, pd_a, buf_a, MB)
            yield from a.hca.post_send(
                qa, SendWR(wr_id=1, sges=[SGE(buf_a, 4 * KB, mr.lkey)])
            )
            wc = yield from a.hca.wait_completion(cqs["sa"])
            got["status"] = wc.status

        k.process(sender())
        k.run()  # terminates: the watchdog gives up, nothing hangs
        assert got["status"] == "transport-retry-exceeded-error"
        assert qa.state == "SQE"
        counters = cluster.aggregate_counters()
        assert counters["faults.qp.retries"] == 2
        assert counters["faults.qp.retry_exhausted"] == 1

    def test_queued_wrs_flushed_after_exhaustion(self):
        """A WR still sitting in the send queue when the QP drains to
        SQE completes with a flush error, not silently."""
        plan = FaultPlan(link_loss=1.0, retry_cnt=1, ack_timeout_ns=20_000.0)
        cluster, (a, pa, buf_a, pd_a, qa), _, cqs = _verbs_pair(plan)
        k = cluster.kernel
        statuses = []

        def sender():
            mr = yield from a.hca.register_memory(pa.aspace, pd_a, buf_a, MB)
            yield from a.hca.post_send(
                qa, SendWR(wr_id=1, sges=[SGE(buf_a, 1 * KB, mr.lkey)])
            )
            wc = yield from a.hca.wait_completion(cqs["sa"])
            statuses.append((wc.wr_id, wc.status))
            assert qa.state == "SQE"
            # model the race where WR 2 was already queued when the QP
            # left RTS: enqueue directly (post_send would refuse now)
            yield qa.wr_slots.request()
            qa.send_q.put(SendWR(wr_id=2, sges=[SGE(buf_a, 1 * KB, mr.lkey)]))
            wc = yield from a.hca.wait_completion(cqs["sa"])
            statuses.append((wc.wr_id, wc.status))

        k.process(sender())
        k.run()
        assert dict(statuses) == {
            1: "transport-retry-exceeded-error",
            2: "work-request-flushed-error",
        }
        assert cluster.aggregate_counters()["faults.qp.flushed"] == 1

    def test_flush_cqes_preserve_submission_order(self):
        """After the drain to SQE, every queued WR flushes in submission
        order: the retry-exceeded CQE first, then one flush-error CQE
        per queued WR, wr_ids in the order they were posted."""
        plan = FaultPlan(link_loss=1.0, retry_cnt=1, ack_timeout_ns=20_000.0)
        cluster, (a, pa, buf_a, pd_a, qa), _, cqs = _verbs_pair(plan)
        k = cluster.kernel
        statuses = []

        def sender():
            mr = yield from a.hca.register_memory(pa.aspace, pd_a, buf_a, MB)
            yield from a.hca.post_send(
                qa, SendWR(wr_id=1, sges=[SGE(buf_a, 1 * KB, mr.lkey)])
            )
            wc = yield from a.hca.wait_completion(cqs["sa"])
            statuses.append((wc.wr_id, wc.status))
            assert qa.state == "SQE"
            # three WRs were already queued when the QP left RTS
            for wr_id in (2, 3, 4):
                yield qa.wr_slots.request()
                qa.send_q.put(SendWR(wr_id=wr_id,
                                     sges=[SGE(buf_a, 1 * KB, mr.lkey)]))
            for _ in range(3):
                wc = yield from a.hca.wait_completion(cqs["sa"])
                statuses.append((wc.wr_id, wc.status))

        k.process(sender())
        k.run()
        assert statuses[0] == (1, "transport-retry-exceeded-error")
        assert statuses[1:] == [
            (2, "work-request-flushed-error"),
            (3, "work-request-flushed-error"),
            (4, "work-request-flushed-error"),
        ]
        assert cluster.aggregate_counters()["faults.qp.flushed"] == 3

    def test_lossy_send_recovers_by_retransmission(self):
        """Every first transmission drops (then the injector's stream
        runs dry of failures at p<1 eventually): with retry budget the
        payload still lands exactly once."""
        plan = FaultPlan(link_loss=0.15, seed=3, retry_cnt=7,
                         ack_timeout_ns=20_000.0)
        cluster, (a, pa, buf_a, pd_a, qa), (b, pb, buf_b, pd_b, qb), cqs = \
            _verbs_pair(plan)
        k = cluster.kernel
        got = {}

        def sender():
            mr = yield from a.hca.register_memory(pa.aspace, pd_a, buf_a, MB)
            yield from a.hca.post_send(
                qa,
                SendWR(wr_id=1, sges=[SGE(buf_a, 8 * KB, mr.lkey)],
                       payload="PRECIOUS"),
            )
            wc = yield from a.hca.wait_completion(cqs["sa"])
            got["send_status"] = wc.status

        def receiver():
            mr = yield from b.hca.register_memory(pb.aspace, pd_b, buf_b, MB)
            yield from b.hca.post_recv(
                qb, RecvWR(wr_id=2, sges=[SGE(buf_b, 16 * KB, mr.lkey)])
            )
            wc = yield from b.hca.wait_completion(cqs["rb"])
            got["payload"] = wc.payload

        k.process(sender())
        k.process(receiver())
        k.run()
        assert got == {"send_status": "success", "payload": "PRECIOUS"}


# ---------------------------------------------------------------------------
# MPI-level recovery: the lossy-link acceptance demo
# ---------------------------------------------------------------------------
def _run_transfers(fault_plan, n_msgs=6, size=48 * KB, rndv_protocol="write"):
    """N rendezvous transfers rank 0 -> rank 1; returns
    (cluster, received payloads, slowest rank's app ticks)."""
    cluster = Cluster(presets.opteron_infinihost_pcie(), n_nodes=2,
                      fault_plan=fault_plan)
    world = MPIWorld(cluster, ppn=1,
                     config=MPIConfig(rndv_protocol=rndv_protocol))

    def program(comm):
        placer = BufferPlacer(comm.proc)
        buf = placer.place(size, PlacementPolicy.SMALL_PAGES, offset=0)
        if comm.rank == 0:
            for i in range(n_msgs):
                yield from comm.send(1, 10 + i, size, addr=buf.addr,
                                     payload=("msg", i))
            return None
        got = []
        for i in range(n_msgs):
            payload, *_ = yield from comm.recv(0, 10 + i, addr=buf.addr)
            got.append(payload)
        return got

    results = world.run(program)
    return cluster, results[1].value, max(r.app_ticks for r in results)


class TestLossyLinkDemo:
    def test_rendezvous_completes_over_lossy_link(self):
        """The ISSUE's demo: 1-2% loss, transfers complete correctly via
        retransmission, drops/retries/recovery visible in the report."""
        _, base_payloads, base_ticks = _run_transfers(None)
        plan = FaultPlan(link_loss=0.02, seed=1)
        cluster, payloads, ticks = _run_transfers(plan)
        expected = [("msg", i) for i in range(6)]
        assert payloads == expected == base_payloads
        counters = cluster.aggregate_counters()
        assert counters.get("faults.link.dropped", 0) >= 1
        assert counters.get("faults.qp.retries", 0) >= 1
        assert ticks > base_ticks  # slower, never wrong
        report = degradation_report(counters, clock=cluster.clock)
        assert "faults.link.dropped" in report
        assert "faults.qp.retries" in report
        assert "recovery latency" in report

    def test_corruption_recovered_like_loss(self):
        plan = FaultPlan(link_corrupt=0.05, seed=2)
        cluster, payloads, _ = _run_transfers(plan)
        assert payloads == [("msg", i) for i in range(6)]
        counters = cluster.aggregate_counters()
        assert counters.get("faults.link.corrupted", 0) >= 1
        assert counters.get("faults.link.rejected", 0) >= 1

    def test_read_rendezvous_recovers_too(self):
        plan = FaultPlan(link_loss=0.02, seed=4)
        cluster, payloads, _ = _run_transfers(plan, rndv_protocol="read")
        assert payloads == [("msg", i) for i in range(6)]
        assert cluster.aggregate_counters().get("faults.link.dropped", 0) >= 1

    def test_total_loss_raises_clean_mpi_error(self):
        """Exhausting retry_cnt must surface as an exception from
        MPIWorld.run, not a deadlock/hang."""
        plan = FaultPlan(link_loss=1.0, retry_cnt=1, ack_timeout_ns=20_000.0)
        with pytest.raises(MPITransportError, match="failed|aborted"):
            _run_transfers(plan, n_msgs=1)


# ---------------------------------------------------------------------------
# registration faults through the regcache (transient retried, permanent
# surfaced; cache invalidated on failure)
# ---------------------------------------------------------------------------
class TestRegistrationFaults:
    def test_transient_failures_retried_transparently(self):
        plan = FaultPlan(reg_transient=0.3, seed=2)
        cluster, payloads, _ = _run_transfers(plan)
        assert payloads == [("msg", i) for i in range(6)]
        counters = cluster.aggregate_counters()
        assert counters.get("faults.reg.transient", 0) >= 1
        assert counters.get("faults.regcache.retries", 0) >= 1

    def test_permanent_failure_raises_cleanly(self):
        plan = FaultPlan(reg_permanent=1.0)
        with pytest.raises(PermanentRegistrationError):
            _run_transfers(plan, n_msgs=1)

    def test_engine_raises_before_pinning(self):
        """An injected registration failure must not leak page pins."""
        cluster = Cluster(presets.opteron_infinihost_pcie(), 1,
                          fault_plan=FaultPlan(reg_transient=1.0))
        machine = cluster.nodes[0]
        proc = machine.new_process()
        vma = proc.aspace.mmap(MB)
        with pytest.raises(TransientRegistrationError):
            machine.reg_engine.register(
                proc.aspace, ProtectionDomain.fresh(), vma.start, MB
            )
        for page in proc.aspace.page_table.pages_in_range(vma.start, MB):
            assert page.pin_count == 0


# ---------------------------------------------------------------------------
# mid-run hugepage depletion (satellite regression test)
# ---------------------------------------------------------------------------
class TestHugepageDepletion:
    def test_midrun_depletion_falls_back_to_base_pages(self):
        """After the pool seizes, hugepage_lib serves base-page mappings,
        counts the fallback, and allocations keep working."""
        from repro.core.library import preload_hugepage_library

        cluster = Cluster(presets.opteron_infinihost_pcie(), 1,
                          fault_plan=FaultPlan(hugepage_deplete_after=2))
        proc = cluster.nodes[0].new_process()
        lib = preload_hugepage_library(proc).allocator
        # two pool acquires succeed; each maps a 2 MB chunk that serves
        # two 1 MB mallocs
        early = [proc.malloc(1 * MB) for _ in range(4)]
        assert all(lib.is_hugepage_backed(p) for p in early)
        # ...then the pool seizes mid-run: transparent 4 KB fallback
        p5 = proc.malloc(1 * MB)
        assert not lib.is_hugepage_backed(p5)
        assert proc.counters.get("alloc.hugepage_lib.fallback") == 1
        counters = cluster.aggregate_counters()
        assert counters["faults.mem.hugepage_denied"] >= 1
        report = degradation_report(counters)
        assert "alloc.hugepage_lib.fallback" in report

    def test_workload_completes_identically_on_fallback(self):
        """The ISSUE's regression: deplete the pool mid-run; the MPI
        workload is slower but bit-for-bit *correct*."""
        def run(plan):
            cluster = Cluster(presets.opteron_infinihost_pcie(), n_nodes=2,
                              fault_plan=plan)
            world = MPIWorld(cluster, ppn=1, config=MPIConfig())

            def program(comm):
                placer = BufferPlacer(comm.proc)
                buf = placer.place(64 * KB, PlacementPolicy.HUGE_PAGES,
                                   offset=0)
                other = 1 - comm.rank
                got = []
                for i in range(4):
                    if comm.rank == 0:
                        yield from comm.send(other, i, 64 * KB,
                                             addr=buf.addr,
                                             payload=("blk", i))
                        yield from comm.recv(other, 100 + i, addr=buf.addr)
                    else:
                        payload, *_ = yield from comm.recv(0, i,
                                                           addr=buf.addr)
                        got.append(payload)
                        yield from comm.send(other, 100 + i, 64 * KB,
                                             addr=buf.addr,
                                             payload=("ok", i))
                return got

            results = world.run(program)
            return cluster, results[1].value, max(r.app_ticks
                                                  for r in results)

        _, base_payloads, base_ticks = run(None)
        # deplete after the very first acquire: most placements fall back
        cluster, payloads, ticks = run(FaultPlan(hugepage_deplete_after=1))
        assert payloads == base_payloads  # identical results, never wrong
        counters = cluster.aggregate_counters()
        assert counters.get("faults.mem.hugepage_denied", 0) >= 1
        assert ticks >= base_ticks


# ---------------------------------------------------------------------------
# zero-cost guarantee and report formatting
# ---------------------------------------------------------------------------
class TestZeroPlanIsFree:
    def test_inactive_plan_attaches_nothing(self):
        cluster = Cluster(presets.opteron_infinihost_pcie(), 2,
                          fault_plan=FaultPlan())
        assert cluster.faults is None
        for node in cluster.nodes:
            assert node.hca.faults is None
            assert node.hugetlbfs.faults is None
            assert node.reg_engine.faults is None

    def test_benchmark_bit_identical_with_empty_plan(self):
        from repro.workloads.imb import SendRecvBenchmark

        bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
        sizes = [4 * KB, 64 * KB]
        plain = bench.run(sizes, hugepages=True, lazy_dereg=True)
        empty = bench.run(sizes, hugepages=True, lazy_dereg=True,
                          fault_plan=FaultPlan())
        assert [r.ticks_per_iter for r in plain.rows] == \
               [r.ticks_per_iter for r in empty.rows]


class TestDegradationReport:
    def test_no_faults_message(self):
        assert "no faults injected" in degradation_report({})
        assert "no faults injected" in degradation_report(
            {"hca.tx_messages": 10}
        )

    def test_classification(self):
        report = degradation_report({
            "faults.link.dropped": 3,
            "faults.qp.retries": 3,
            "faults.qp.retry_exhausted": 1,
            "alloc.hugepage_lib.fallback": 2,
        })
        for expected in ("injected", "recovered", "aborted", "degraded",
                         "WARNING"):
            assert expected in report
