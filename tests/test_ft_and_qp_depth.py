"""Tests for the FT extension kernel and QP send-queue depth limits."""

import pytest

from repro.ib.hca import HCA
from repro.ib.verbs import SGE, CompletionQueue, ProtectionDomain, RecvWR, SendWR
from repro.systems import Cluster, presets
from repro.workloads.nas import EXTENSION_KERNELS, KERNELS, ft
from repro.workloads.nas.common import compare_hugepages, run_nas

MB = 1024 * 1024


class TestFTKernel:
    def test_registered_as_extension_not_fig6(self):
        assert "FT" in EXTENSION_KERNELS
        assert "FT" not in KERNELS

    def test_fft_roundtrip_verified(self):
        r = run_nas(ft.program, presets.opteron_infinihost_pcie(),
                    hugepages=False, klass="W")
        assert r.verified
        assert r.comm_ticks > 0

    def test_verified_under_hugepages_too(self):
        c = compare_hugepages(ft.program, presets.opteron_infinihost_pcie(),
                              klass="W")
        assert c.small.verified and c.huge.verified

    def test_mixed_hugepage_profile(self):
        """FT pulls both ways: streams help, the pow2 transpose hurts —
        the TLB ratio sits near 1 and the overall effect is small."""
        c = compare_hugepages(ft.program, presets.opteron_infinihost_pcie(),
                              klass="W")
        assert 0.3 < c.tlb_miss_ratio < 3.0
        assert -5.0 < c.overall_improvement_pct < 10.0


class TestQPSendQueueDepth:
    def test_post_blocks_when_queue_full(self):
        """With depth 1 and no receiver, a second post must wait until
        the engine drains the first WR."""
        cluster = Cluster(presets.systemp_ehca(), 2)
        k = cluster.kernel
        a, b = cluster.nodes
        pa, pb = a.new_process(), b.new_process()
        buf_a = pa.aspace.mmap(MB).start
        buf_b = pb.aspace.mmap(MB).start
        pd_a, pd_b = ProtectionDomain.fresh(), ProtectionDomain.fresh()
        sa, ra, sb, rb = (CompletionQueue(k) for _ in range(4))

        from repro.ib.verbs import QueuePair

        qa = QueuePair(k, pd_a, sa, ra, max_send_wr=1)
        a.hca._qps[qa.qp_num] = qa
        k.process(a.hca._send_loop(qa), name="sq-test")
        qb = b.hca.create_qp(pd_b, sb, rb)
        HCA.connect_pair(qa, a.hca, qb, b.hca)
        times = {}

        def sender():
            mr = yield from a.hca.register_memory(pa.aspace, pd_a, buf_a, MB)
            t0 = k.now
            for i in range(3):
                yield from a.hca.post_send(
                    qa, SendWR(wr_id=i, sges=[SGE(buf_a, 64, mr.lkey)])
                )
            times["posted_all"] = k.now - t0

        def receiver():
            mr = yield from b.hca.register_memory(pb.aspace, pd_b, buf_b, MB)
            for i in range(3):
                yield from b.hca.post_recv(
                    qb, RecvWR(wr_id=10 + i, sges=[SGE(buf_b, 4096, mr.lkey)])
                )
                yield from b.hca.wait_completion(rb)

        k.process(sender())
        k.process(receiver())
        k.run()
        # with depth 1 each post waits for the previous completion:
        # posting takes far longer than 3x the CPU post cost
        assert times["posted_all"] > 3 * 600

    def test_default_depth_does_not_block_modest_bursts(self):
        cluster = Cluster(presets.systemp_ehca(), 2)
        k = cluster.kernel
        a, b = cluster.nodes
        pa, pb = a.new_process(), b.new_process()
        buf_a = pa.aspace.mmap(MB).start
        buf_b = pb.aspace.mmap(MB).start
        pd_a, pd_b = ProtectionDomain.fresh(), ProtectionDomain.fresh()
        sa, ra, sb, rb = (CompletionQueue(k) for _ in range(4))
        qa = a.hca.create_qp(pd_a, sa, ra)
        qb = b.hca.create_qp(pd_b, sb, rb)
        HCA.connect_pair(qa, a.hca, qb, b.hca)
        out = {}

        def sender():
            mr = yield from a.hca.register_memory(pa.aspace, pd_a, buf_a, MB)
            t0 = k.now
            for i in range(10):
                yield from a.hca.post_send(
                    qa, SendWR(wr_id=i, sges=[SGE(buf_a, 64, mr.lkey)])
                )
            out["post_time"] = k.now - t0

        def receiver():
            mr = yield from b.hca.register_memory(pb.aspace, pd_b, buf_b, MB)
            for i in range(10):
                yield from b.hca.post_recv(
                    qb, RecvWR(wr_id=10 + i, sges=[SGE(buf_b, 4096, mr.lkey)])
                )
                yield from b.hca.wait_completion(rb)

        k.process(sender())
        k.process(receiver())
        k.run()
        # 10 posts at ~250 ticks each: no queue-full stalls
        assert out["post_time"] < 10 * 400
