"""Unit tests for the analysis package (counters + report formatting)."""

import pytest

from repro.analysis import CounterSet, Table, format_series
from repro.analysis.report import percent_change


class TestCounterSet:
    def test_add_and_get(self):
        c = CounterSet()
        c.add("tlb.4k.miss")
        c.add("tlb.4k.miss", 4)
        assert c["tlb.4k.miss"] == 5
        assert c.get("unknown") == 0

    def test_negative_corrections(self):
        c = CounterSet()
        c.add("x", 10)
        c.add("x", -3)
        assert c["x"] == 7

    def test_group(self):
        c = CounterSet()
        c.add("tlb.4k.miss", 2)
        c.add("tlb.4k.hit", 5)
        c.add("tlb.2m.miss", 1)
        c.add("tlbx", 9)
        assert c.group("tlb.4k") == {"miss": 2, "hit": 5}
        assert c.group("tlb") == {"4k.miss": 2, "4k.hit": 5, "2m.miss": 1}

    def test_snapshot_diff(self):
        c = CounterSet()
        c.add("a", 5)
        snap = c.snapshot()
        c.add("a", 3)
        c.add("b", 1)
        assert c.diff(snap) == {"a": 3, "b": 1}

    def test_reset(self):
        c = CounterSet()
        c.add("a")
        c.reset()
        assert len(c) == 0

    def test_merged_with(self):
        a, b = CounterSet(), CounterSet()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        assert a.merged_with(b) == {"x": 3, "y": 3}

    def test_iteration_sorted(self):
        c = CounterSet()
        c.add("b")
        c.add("a")
        assert [name for name, _ in c] == ["a", "b"]

    def test_contains(self):
        c = CounterSet()
        c.add("x")
        assert "x" in c and "y" not in c


class TestTable:
    def test_render_contains_cells(self):
        t = Table(["size", "MB/s"], title="demo")
        t.add_row([1024, 812.5])
        out = t.render()
        assert "demo" in out
        assert "1024" in out
        assert "812.5" in out

    def test_row_length_validated(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_none_renders_dash(self):
        t = Table(["x"])
        t.add_row([None])
        assert "-" in t.render()

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row([12345.6])
        assert "12,346" in t.render()


class TestSeries:
    def test_format_series(self):
        out = format_series("curve", [1, 2], [10.0, 20.0], "x", "y")
        assert "# series: curve" in out
        assert out.count("\n") == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("bad", [1], [1, 2])


class TestPercentChange:
    def test_improvement_positive(self):
        assert percent_change(100.0, 90.0) == pytest.approx(10.0)

    def test_regression_negative(self):
        assert percent_change(100.0, 110.0) == pytest.approx(-10.0)

    def test_zero_before_rejected(self):
        with pytest.raises(ValueError):
            percent_change(0.0, 1.0)
