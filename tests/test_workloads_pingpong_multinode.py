"""Tests for the PingPong benchmark and >2-node cluster operation."""

import pytest

from repro.mpi import MPIConfig, MPIWorld
from repro.systems import Cluster, presets
from repro.workloads.imb import PingPongBenchmark

KB = 1024
MB = 1024 * 1024


class TestPingPong:
    @pytest.fixture(scope="class")
    def sweep(self):
        bench = PingPongBenchmark(presets.opteron_infinihost_pcie)
        return bench.run([64, 1 * KB, 8 * KB, 64 * KB, 1 * MB],
                         hugepages=False)

    def test_small_message_latency_era_plausible(self, sweep):
        """IB 4x SDR small-message half-RTT was ~4-6 us in 2006."""
        lat = sweep.rows[0].latency_us
        assert 2.0 < lat < 10.0

    def test_latency_monotone_in_size(self, sweep):
        lats = [r.latency_us for r in sweep.rows]
        assert lats == sorted(lats)

    def test_unidirectional_bandwidth_below_link(self, sweep):
        assert sweep.bandwidth_at(1 * MB) < 940.0

    def test_eager_latency_insensitive_to_placement(self):
        """Below the RDMA threshold, hugepages buy nothing — the §5.1
        protocol map, seen from the latency side."""
        bench = PingPongBenchmark(presets.opteron_infinihost_pcie)
        small = bench.run([1 * KB], hugepages=False)
        huge = bench.run([1 * KB], hugepages=True)
        assert small.rows[0].latency_us == pytest.approx(
            huge.rows[0].latency_us, rel=0.05
        )

    def test_validation(self):
        bench = PingPongBenchmark(presets.opteron_infinihost_pcie)
        with pytest.raises(ValueError):
            bench.run([], hugepages=False)


class TestMultiNode:
    def test_four_node_collectives(self):
        """Full-mesh wiring: collectives across 4 nodes x 2 ranks."""
        cluster = Cluster(presets.opteron_infinihost_pcie(), n_nodes=4)
        world = MPIWorld(cluster, ppn=2)

        def program(comm):
            total = yield from comm.allreduce(8, value=comm.rank)
            vals = yield from comm.allgather(8, value=comm.rank ** 2)
            yield from comm.barrier()
            return (total, vals)

        results = world.run(program)
        expected_sum = sum(range(8))
        expected_sq = [r * r for r in range(8)]
        for r in results:
            assert r.value == (expected_sum, expected_sq)

    def test_cross_node_point_to_point_all_pairs(self):
        cluster = Cluster(presets.opteron_infinihost_pcie(), n_nodes=3)
        world = MPIWorld(cluster, ppn=1)

        def program(comm):
            # everyone sends to everyone (pairwise, deadlock-free order)
            got = {}
            for step in range(1, comm.size):
                dest = (comm.rank + step) % comm.size
                src = (comm.rank - step) % comm.size
                res = yield from comm.sendrecv(
                    dest, 50 + step, 4 * KB, source=src,
                    recvtag=50 + step, payload=f"{comm.rank}->{dest}",
                )
                got[src] = res[0]
            return got

        results = world.run(program)
        for r in results:
            for src, msg in r.value.items():
                assert msg == f"{src}->{r.rank}"

    def test_alltoallv_across_nodes(self):
        cluster = Cluster(presets.opteron_infinihost_pcie(), n_nodes=2)
        world = MPIWorld(cluster, ppn=3)  # 6 ranks, mixed intra/inter

        def program(comm):
            payloads = [f"{comm.rank}:{d}" for d in range(comm.size)]
            got = yield from comm.alltoallv([128] * comm.size,
                                            payloads=payloads)
            return got

        results = world.run(program)
        for r in results:
            assert r.value == [f"{s}:{r.rank}" for s in range(6)]
