"""Tests for RDMA read and the read-based rendezvous protocol."""

import numpy as np
import pytest

from repro.ib.hca import HCA
from repro.ib.verbs import SGE, CompletionQueue, ProtectionDomain, SendWR
from repro.mpi import MPIConfig, MPIWorld
from repro.systems import Cluster, presets

KB = 1024
MB = 1024 * 1024


class TestRDMARead:
    def run_read(self, corrupt_rkey=False):
        cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
        k = cluster.kernel
        a, b = cluster.nodes
        pa, pb = a.new_process(), b.new_process()
        src = pa.aspace.mmap(MB).start   # data lives at node A
        dst = pb.aspace.mmap(MB).start   # node B pulls it
        pd_a, pd_b = ProtectionDomain.fresh(), ProtectionDomain.fresh()
        cq_sa, cq_ra = CompletionQueue(k), CompletionQueue(k)
        cq_sb, cq_rb = CompletionQueue(k), CompletionQueue(k)
        qa = a.hca.create_qp(pd_a, cq_sa, cq_ra)
        qb = b.hca.create_qp(pd_b, cq_sb, cq_rb)
        HCA.connect_pair(qa, a.hca, qb, b.hca)
        got = {}

        def exposer():
            mr = yield from a.hca.register_memory(pa.aspace, pd_a, src, MB)
            a.hca.rdma_exposed[(mr.rkey, src)] = "EXPOSED-DATA"
            rkey = 0xBAD if corrupt_rkey else mr.rkey
            k.process(reader(rkey))

        def reader(rkey):
            mr = yield from b.hca.register_memory(pb.aspace, pd_b, dst, MB)
            yield from b.hca.post_send(
                qb,
                SendWR(wr_id=1, sges=[SGE(dst, 256 * KB, mr.lkey)],
                       opcode="rdma_read", remote_addr=src, rkey=rkey),
            )
            wc = yield from b.hca.wait_completion(cq_sb)
            got["status"] = wc.status
            got["payload"] = wc.payload
            got["bytes"] = wc.byte_len

        k.process(exposer())
        k.run()
        return got

    def test_read_pulls_exposed_payload(self):
        got = self.run_read()
        assert got == {"status": "success", "payload": "EXPOSED-DATA",
                       "bytes": 256 * KB}

    def test_bad_rkey_fails(self):
        got = self.run_read(corrupt_rkey=True)
        assert got["status"] == "remote-access-error"
        assert got["payload"] is None


class TestReadRendezvous:
    def _world(self, proto):
        cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
        return MPIWorld(cluster, ppn=1,
                        config=MPIConfig(rndv_protocol=proto))

    def test_payload_delivery(self):
        world = self._world("read")

        def program(comm):
            other = 1 - comm.rank
            buf = comm.proc.malloc(MB)
            if comm.rank == 0:
                data = np.arange(16)
                yield from comm.send(other, 3, 256 * KB, addr=buf, payload=data)
                return None
            payload, size, *_ = yield from comm.recv(0, 3, addr=buf)
            return (payload.sum(), size)

        results = world.run(program)
        assert results[1].value == (np.arange(16).sum(), 256 * KB)

    def test_invalid_protocol_rejected(self):
        with pytest.raises(ValueError):
            MPIConfig(rndv_protocol="teleport")

    def test_exposure_cleaned_up(self):
        world = self._world("read")

        def program(comm):
            other = 1 - comm.rank
            buf = comm.proc.malloc(MB)
            if comm.rank == 0:
                yield from comm.send(other, 3, 256 * KB, addr=buf, payload="x")
            else:
                yield from comm.recv(0, 3, addr=buf)
            return len(comm.endpoint.hca.rdma_exposed)

        results = world.run(program)
        assert all(r.value == 0 for r in results)

    def test_read_saves_a_control_message(self):
        """The read scheme has RTS + FIN; write has RTS + CTS + FIN —
        visible in the HCA message counters."""

        def count_messages(proto):
            cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
            world = MPIWorld(cluster, ppn=1,
                             config=MPIConfig(rndv_protocol=proto))

            def program(comm):
                other = 1 - comm.rank
                buf = comm.proc.malloc(MB)
                if comm.rank == 0:
                    yield from comm.send(other, 1, 256 * KB, addr=buf)
                else:
                    yield from comm.recv(0, 1, addr=buf)
                return None

            world.run(program)
            return cluster.aggregate_counters().get("hca.tx_messages", 0)

        assert count_messages("read") < count_messages("write")

    def test_protocols_agree_on_steady_state_bandwidth(self):
        def run(proto):
            world = self._world(proto)
            out = {}

            def program(comm):
                other = 1 - comm.rank
                buf = comm.proc.malloc(8 * MB)
                t0 = comm.kernel.now
                for _ in range(3):
                    yield from comm.sendrecv(other, 1, 4 * MB, source=other,
                                             recvtag=1, send_addr=buf,
                                             recv_addr=buf + 4 * MB)
                if comm.rank == 0:
                    out["ticks"] = comm.kernel.now - t0
                return None

            world.run(program)
            return out["ticks"]

        t_write, t_read = run("write"), run("read")
        assert t_read == pytest.approx(t_write, rel=0.05)
