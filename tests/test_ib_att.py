"""Unit tests for the ATT cache (repro.ib.att)."""

import pytest

from repro.analysis import CounterSet
from repro.ib.att import ATTCache, ATTConfig


@pytest.fixture
def att():
    return ATTCache(ATTConfig(entries=4, fetch_ns=100.0))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ATTConfig(entries=0)
        with pytest.raises(ValueError):
            ATTConfig(fetch_ns=-1.0)


class TestAccess:
    def test_miss_then_hit(self, att):
        hit, ns = att.access(1, 0)
        assert not hit and ns == 100.0
        hit, ns = att.access(1, 0)
        assert hit and ns == 0.0

    def test_distinct_regions_distinct_entries(self, att):
        att.access(1, 0)
        hit, _ = att.access(2, 0)
        assert not hit

    def test_lru_eviction(self, att):
        for i in range(4):
            att.access(1, i)
        att.access(1, 0)  # refresh entry 0
        att.access(1, 99)  # evicts entry 1
        assert att.access(1, 0)[0] is True
        assert att.access(1, 1)[0] is False

    def test_counters(self):
        counters = CounterSet()
        att = ATTCache(ATTConfig(), counters)
        att.access(1, 0)
        att.access(1, 0)
        assert counters["att.miss"] == 1
        assert counters["att.hit"] == 1


class TestStreamStall:
    def test_cold_stream_all_misses(self, att):
        ns = att.stream_stall_ns(1, 0, 3)
        assert ns == 300.0

    def test_warm_small_stream_free(self, att):
        att.stream_stall_ns(1, 0, 3)
        assert att.stream_stall_ns(1, 0, 3) == 0.0

    def test_large_stream_thrashes(self, att):
        """More entries than the cache holds: every pass re-misses —
        the 4 KB-translation behaviour behind the Xeon result."""
        att.stream_stall_ns(1, 0, 100)
        ns = att.stream_stall_ns(1, 0, 100)
        assert ns == 100 * 100.0

    def test_negative_rejected(self, att):
        with pytest.raises(ValueError):
            att.stream_stall_ns(1, 0, -1)


class TestInvalidation:
    def test_invalidate_region(self, att):
        att.access(1, 0)
        att.access(1, 1)
        att.access(2, 0)
        dropped = att.invalidate_region(1)
        assert dropped == 2
        assert att.resident == 1
        assert att.access(2, 0)[0] is True

    def test_flush(self, att):
        att.access(1, 0)
        att.flush()
        assert att.resident == 0
