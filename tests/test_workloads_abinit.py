"""Tests for the Abinit-like application workload."""

import pytest

from repro.systems import presets
from repro.workloads.abinit import compare_allocators, run_abinit


@pytest.fixture(scope="module")
def comparison():
    return compare_allocators(presets.opteron_infinihost_pcie, iterations=8)


class TestAbinitWorkload:
    def test_both_runs_complete(self, comparison):
        assert set(comparison) == {"libc", "hugepage_lib"}
        for r in comparison.values():
            assert r.total_ns > 0
            assert r.alloc_ns > 0
            assert r.compute_ns > 0

    def test_library_cuts_allocator_time(self, comparison):
        """§2: allocator-time benefit approaching an order of magnitude."""
        ratio = comparison["libc"].alloc_ns / comparison["hugepage_lib"].alloc_ns
        assert ratio > 5.0

    def test_allocator_saving_is_percent_scale(self, comparison):
        """§3.2: 'improved application runtime by 1.5 %' — allocator time
        alone is a small single-digit share of runtime."""
        libc = comparison["libc"]
        lib = comparison["hugepage_lib"]
        saving_pct = (libc.alloc_ns - lib.alloc_ns) / libc.total_ns * 100
        assert 0.3 < saving_pct < 8.0

    def test_total_runtime_improves(self, comparison):
        assert comparison["hugepage_lib"].total_ns < comparison["libc"].total_ns

    def test_alloc_fraction_property(self, comparison):
        r = comparison["libc"]
        assert r.alloc_fraction == pytest.approx(r.alloc_ns / r.total_ns)

    def test_deterministic(self):
        a = run_abinit(presets.opteron_infinihost_pcie(), hugepages=False,
                       iterations=4)
        b = run_abinit(presets.opteron_infinihost_pcie(), hugepages=False,
                       iterations=4)
        assert a.total_ns == b.total_ns

    def test_allocator_names(self, comparison):
        assert comparison["libc"].allocator == "libc"
        assert comparison["hugepage_lib"].allocator == "hugepage_lib"
