"""Fast-path <-> reference-path equivalence (the perf PR's contract).

Every batched costing routine in the simulator must be *bit-equivalent*
to the per-element reference loop it replaces: identical reported ticks,
identical counter values, identical model state afterwards (LRU content
and order, pin counts).  These tests enforce that property-style, from
the shared LRU-sweep primitive all the way up to whole figure drivers —
including runs with an active :class:`~repro.faults.FaultPlan`, where
the HCA must fall back to the per-packet machinery on both settings of
the toggle.
"""

from collections import OrderedDict

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings
import pytest

from repro import fastpath
from repro.analysis import CounterSet
from repro.engine import SimKernel, TickClock
from repro.fastpath import lru_sweep
from repro.ib.att import ATTCache, ATTConfig
from repro.ib.link import IBLink, LinkConfig
from repro.mem import (
    AddressSpace,
    CacheConfig,
    HugeTLBfs,
    PAGE_2M,
    PAGE_4K,
    PhysicalMemory,
    TLBConfig,
)
from repro.mem.access import MemoryAccessEngine
from repro.mem.tlb import SplitTLB

KB = 1024
MB = 1024 * 1024


# ---------------------------------------------------------------------------
# the shared primitive: lru_sweep
# ---------------------------------------------------------------------------

def _replay_reference(array, first_key, n_keys, stride, capacity):
    """The key-by-key loop lru_sweep's docstring promises to match."""
    hits = 0
    for key in range(first_key, first_key + n_keys * stride, stride):
        if key in array:
            array.move_to_end(key)
            hits += 1
        else:
            while len(array) >= capacity:
                array.popitem(last=False)
            array[key] = True
    return hits, n_keys - hits


class TestLRUSweepPrimitive:
    @given(
        pre=st.lists(st.integers(min_value=0, max_value=60), max_size=60),
        first=st.integers(min_value=0, max_value=50),
        n=st.integers(min_value=1, max_value=120),
        stride=st.sampled_from([1, 2, 4]),
        capacity=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_replay(self, pre, first, n, stride, capacity):
        fast, ref = OrderedDict(), OrderedDict()
        # identical pre-state, built through the reference access pattern
        # on the sweep's key grid so hits/evictions actually occur
        for k in pre:
            _replay_reference(fast, k * stride, 1, stride, capacity)
            _replay_reference(ref, k * stride, 1, stride, capacity)
        got = lru_sweep(fast, first * stride, n, stride, capacity)
        want = _replay_reference(ref, first * stride, n, stride, capacity)
        assert got == want
        assert list(fast.items()) == list(ref.items())

    @given(
        capacity=st.integers(min_value=1, max_value=8),
        rounds=st.integers(min_value=2, max_value=4),
        factor=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_repeated_long_sweep_shortcut(self, capacity, rounds, factor):
        """Back-to-back >=2x-capacity sweeps hit the O(capacity) case."""
        n = factor * capacity
        fast, ref = OrderedDict(), OrderedDict()
        for _ in range(rounds):
            got = lru_sweep(fast, 0, n, 1, capacity)
            want = _replay_reference(ref, 0, n, 1, capacity)
            assert got == want
            assert list(fast.items()) == list(ref.items())


# ---------------------------------------------------------------------------
# stateful hardware models: TLB, ATT
# ---------------------------------------------------------------------------

class TestSweepEquivalence:
    @given(
        ops=st.lists(
            st.tuples(st.integers(min_value=0, max_value=50),
                      st.integers(min_value=1, max_value=40)),
            min_size=1, max_size=12,
        ),
        entries=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_tlb_sweep_matches_access_loop(self, ops, entries):
        config = TLBConfig(entries_4k=entries, entries_2m=4)
        fast_counters, ref_counters = CounterSet(), CounterSet()
        fast_tlb = SplitTLB(config, fast_counters)
        ref_tlb = SplitTLB(config, ref_counters)
        for page, n_pages in ops:
            got = fast_tlb.sweep(page * PAGE_4K, n_pages, PAGE_4K)
            hits = misses = 0
            ns = 0.0
            for i in range(n_pages):
                hit, extra = ref_tlb.access((page + i) * PAGE_4K, PAGE_4K)
                hits += hit
                misses += not hit
                ns += extra
            assert got == (hits, misses, ns)
            assert list(fast_tlb._arrays[PAGE_4K].items()) == \
                list(ref_tlb._arrays[PAGE_4K].items())
        assert fast_counters.snapshot() == ref_counters.snapshot()

    @given(
        ops=st.lists(
            st.tuples(st.integers(min_value=1, max_value=3),
                      st.integers(min_value=0, max_value=40),
                      st.integers(min_value=1, max_value=50)),
            min_size=1, max_size=12,
        ),
        entries=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_att_sweep_range_matches_access_loop(self, ops, entries):
        config = ATTConfig(entries=entries, fetch_ns=250.0)
        fast_counters, ref_counters = CounterSet(), CounterSet()
        fast_att = ATTCache(config, fast_counters)
        ref_att = ATTCache(config, ref_counters)
        for mr, first, n in ops:
            got = fast_att.sweep_range(mr, first, n)
            hits = misses = 0
            for idx in range(first, first + n):
                hit, _ = ref_att.access(mr, idx)
                hits += hit
                misses += not hit
            assert got == (hits, misses)
            assert list(fast_att._cache.items()) == \
                list(ref_att._cache.items())
        assert fast_counters.snapshot() == ref_counters.snapshot()


# ---------------------------------------------------------------------------
# the access engine: touch / stream / copy on real page tables
# ---------------------------------------------------------------------------

def _paired_engines():
    """Two engines over one address space: small TLB/cache geometries so
    short hypothesis runs still evict, plus three VMAs (two 4 KB-backed,
    one hugepage-backed) to mix page sizes."""
    pm = PhysicalMemory(64 * MB, hugepages=8)
    aspace = AddressSpace(pm, HugeTLBfs(pm))
    vmas = [
        aspace.mmap(96 * KB),
        aspace.mmap(4 * MB, page_size=PAGE_2M),
        aspace.mmap(160 * KB),
    ]
    tlb_config = TLBConfig(entries_4k=16, entries_2m=2)
    cache_config = CacheConfig(capacity_bytes=16 * KB)
    clock = TickClock(206.25)
    engines = tuple(
        MemoryAccessEngine(aspace, tlb_config, cache_config, clock,
                           CounterSet())
        for _ in range(2)
    )
    return vmas, engines


access_ops = st.lists(
    st.tuples(
        st.sampled_from(["touch", "stream", "copy"]),
        st.integers(min_value=0, max_value=2),      # vma index
        st.integers(min_value=0, max_value=2**20),  # offset seed
        st.integers(min_value=1, max_value=2**20),  # length seed
        st.booleans(),                              # write
    ),
    min_size=1, max_size=10,
)


class TestAccessEngineEquivalence:
    @given(ops=access_ops)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_touch_stream_copy_bit_identical(self, ops):
        vmas, (fast_engine, ref_engine) = _paired_engines()
        for kind, vma_idx, off_seed, len_seed, write in ops:
            vma = vmas[vma_idx]
            size = vma.end - vma.start
            offset = off_seed % size
            nbytes = 1 + len_seed % (size - offset)
            with fastpath.forced(True):
                fast_cost = self._apply(fast_engine, kind, vma.start,
                                        offset, nbytes, write)
            with fastpath.forced(False):
                ref_cost = self._apply(ref_engine, kind, vma.start,
                                       offset, nbytes, write)
            # full dataclass equality: ns, ticks and every event count
            assert fast_cost == ref_cost, (kind, offset, nbytes, write)
        assert fast_engine.counters.snapshot() == \
            ref_engine.counters.snapshot()
        for page_size in (PAGE_4K, PAGE_2M):
            assert list(fast_engine.tlb._arrays[page_size].items()) == \
                list(ref_engine.tlb._arrays[page_size].items())
        assert list(fast_engine.cache._lines.items()) == \
            list(ref_engine.cache._lines.items())

    @staticmethod
    def _apply(engine, kind, base, offset, nbytes, write):
        if kind == "touch":
            return engine.touch(base + offset, nbytes, write)
        if kind == "stream":
            return engine.stream(base + offset, nbytes, write)
        # copy: read the front of the VMA, write the chosen range
        return engine.copy(base, base + offset, nbytes)


# ---------------------------------------------------------------------------
# registration: batched page costing, pin-count state
# ---------------------------------------------------------------------------

def _register_once(fast, page_size, size):
    from repro.ib.verbs import ProtectionDomain
    from repro.systems import Machine, presets

    with fastpath.forced(fast):
        machine = Machine(SimKernel(),
                          presets.opteron_infinihost_pcie(hugepages=256))
        proc = machine.new_process()
        pd = ProtectionDomain.fresh()
        vma = proc.aspace.mmap(size, page_size=page_size)
        mr, ns = machine.reg_engine.register(proc.aspace, pd, vma.start, size)
        pinned = [e.pin_count for e in
                  proc.aspace.page_table.pages_in_range(vma.start, size)]
        machine.reg_engine.deregister(proc.aspace, mr)
        unpinned = [e.pin_count for e in
                    proc.aspace.page_table.pages_in_range(vma.start, size)]
    return ns, pinned, unpinned


class TestRegistrationEquivalence:
    @pytest.mark.parametrize("page_size", [PAGE_4K, PAGE_2M])
    @pytest.mark.parametrize("size", [64 * KB, 1 * MB, 6 * MB])
    def test_cost_and_pin_state_identical(self, page_size, size):
        fast = _register_once(True, page_size, size)
        ref = _register_once(False, page_size, size)
        assert fast == ref
        ns, pinned, unpinned = fast
        assert ns > 0
        assert all(c == 1 for c in pinned)
        assert all(c == 0 for c in unpinned)


# ---------------------------------------------------------------------------
# end to end: the figure drivers, with and without faults
# ---------------------------------------------------------------------------

def _measure_send(fast, sges, sge_size, offset):
    from repro.workloads.verbs_micro import measure_send

    with fastpath.forced(fast):
        r = measure_send(sges=sges, sge_size=sge_size, offset=offset)
    return r.post_ticks, r.total_ticks


def _imb_rows(fast, fault_plan):
    from repro.systems import presets
    from repro.workloads.imb import SendRecvBenchmark

    with fastpath.forced(fast):
        bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
        try:
            result = bench.run([64 * KB, 1 * MB], hugepages=False,
                               lazy_dereg=True, iterations=2, warmup=1,
                               fault_plan=fault_plan)
        except Exception as exc:  # retry exhaustion is a legal outcome
            return ("aborted", type(exc).__name__, str(exc))
    return tuple((row.size, row.ticks_per_iter, row.latency_us,
                  row.bandwidth_mb_s) for row in result.rows)


class TestDriversEquivalence:
    @given(
        sges=st.integers(min_value=1, max_value=32),
        sge_size=st.integers(min_value=1, max_value=2048),
        offset=st.integers(min_value=0, max_value=128),
    )
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_verbs_micro_identical(self, sges, sge_size, offset):
        assert _measure_send(True, sges, sge_size, offset) == \
            _measure_send(False, sges, sge_size, offset)

    def test_imb_sendrecv_identical(self):
        assert _imb_rows(True, None) == _imb_rows(False, None)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_imb_identical_under_faults(self, seed):
        """An active FaultPlan forces the per-packet slow path; the
        toggle must then be a no-op — same ticks either way, even when
        the run legally aborts on retry exhaustion."""
        from repro.faults import FaultPlan

        def plan():
            return FaultPlan(link_loss=0.05, link_corrupt=0.02,
                             reg_transient=0.1, seed=seed)

        assert _imb_rows(True, plan()) == _imb_rows(False, plan())


# ---------------------------------------------------------------------------
# satellite: link serialization guard + precomputed per-byte cost
# ---------------------------------------------------------------------------

class TestLinkSerialization:
    def test_ns_per_byte_precomputed_in_config(self):
        config = LinkConfig(payload_mb_s=800.0)
        assert config.ns_per_byte == 1e3 / 800.0
        # the default 940 MB/s link too
        assert LinkConfig().ns_per_byte == 1e3 / 940.0

    def test_negative_byte_count_rejected(self):
        link = IBLink(LinkConfig())
        with pytest.raises(ValueError):
            link.serialization_ns(-1)
        with pytest.raises(ValueError):
            link.packets_for(-5)

    @given(nbytes=st.integers(min_value=0, max_value=64 * MB))
    @settings(max_examples=200, deadline=None)
    def test_serialization_formula_and_monotonicity(self, nbytes):
        link = IBLink(LinkConfig())
        config = link.config
        got = link.serialization_ns(nbytes)
        assert got == (link.packets_for(nbytes) * config.packet_ns
                       + nbytes * config.ns_per_byte)
        assert link.serialization_ns(nbytes + config.mtu_bytes) > got
