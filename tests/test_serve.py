"""``repro serve``: admission control, durable queueing, deadlines,
disconnects, drain — and the kill-server chaos recovery guarantee.

Three layers of coverage:

* pure unit tests of the journal fold/compaction (:mod:`repro.serve.
  state`) and synchronous service tests that drive the scheduler by
  hand (no sockets, no event loop);
* end-to-end asyncio tests against a real in-process HTTP server on an
  ephemeral port (backpressure, deadlines, conflict, disconnect,
  drain, the soak test);
* subprocess tests of the real ``repro serve`` CLI: SIGKILL the server
  mid-batch, restart with ``--resume``, and assert the replayed run's
  results are byte-identical to an undisturbed baseline.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.batch import parse_chaos
from repro.batch.journal import read_journal
from repro.batch.spec import SpecError, job_key
from repro.serve import (Busy, Conflict, Draining, ExperimentService,
                         ServeError, fold_serve, keep_records)
from repro.serve.http import ServeApp
from repro.serve.state import DONE, QUEUED, REJECTED, RUNNING

REPO = Path(__file__).resolve().parent.parent

FAST_JOB = {"command": "breakdown", "args": ["--mb", "1"]}
#: a job wedged by stall chaos: occupies a worker until killed
STALL_CHAOS = parse_chaos("stall:p=1.0", seed=0)


# --- journal fold / compaction ---------------------------------------------


class TestFoldServe:
    SUBMIT = {"ev": "submitted", "job": "j1", "seq": 0, "key": "k" * 64,
              "command": "fig4", "args": [], "timeout": None,
              "client": "c1", "deadline_wall": 12345.0}

    def test_submission_then_done(self):
        folded = fold_serve([
            self.SUBMIT,
            {"ev": "running", "job": "j1", "attempt": 0},
            {"ev": "done", "job": "j1", "key": "k" * 64,
             "result": "/r.out", "cached": False},
        ])
        st = folded["j1"]
        assert st["status"] == DONE
        assert st["attempts"] == 1
        assert st["client"] == "c1"
        assert st["deadline_wall"] == 12345.0

    def test_crash_mid_run_folds_back_to_runnable(self):
        # a journal that simply *ends* while running is what SIGKILL
        # leaves behind; the fold must keep the job re-runnable
        folded = fold_serve([
            self.SUBMIT,
            {"ev": "running", "job": "j1", "attempt": 0},
        ])
        assert folded["j1"]["status"] == RUNNING
        assert folded["j1"]["attempts"] == 1

    def test_killed_and_retry_requeue(self):
        folded = fold_serve([
            self.SUBMIT,
            {"ev": "running", "job": "j1", "attempt": 0},
            {"ev": "killed", "job": "j1", "attempt": 0,
             "reason": "drain-deadline"},
        ])
        assert folded["j1"]["status"] == QUEUED
        folded = fold_serve([
            self.SUBMIT,
            {"ev": "running", "job": "j1", "attempt": 0},
            {"ev": "retry", "job": "j1", "attempt": 1},
        ])
        assert folded["j1"]["status"] == QUEUED
        assert folded["j1"]["attempts"] == 1

    def test_keep_records_fold_to_same_state(self):
        history = [
            self.SUBMIT,
            {"ev": "running", "job": "j1", "attempt": 0},
            {"ev": "retry", "job": "j1", "attempt": 1},
            {"ev": "running", "job": "j1", "attempt": 1},
            {"ev": "done", "job": "j1", "key": "k" * 64,
             "result": "/r.out", "cached": False},
            dict(self.SUBMIT, job="j2", seq=1),
            {"ev": "running", "job": "j2", "attempt": 0},
            {"ev": "killed", "job": "j2", "attempt": 0, "reason": "x"},
        ]
        keep = keep_records(history)
        assert fold_serve(keep) == fold_serve(history)
        # j1's two attempts compact to one running line; live j2 keeps
        # its retry marker so it re-queues (not re-runs-as-attempt-0)
        assert [r["ev"] for r in keep if r["job"] == "j1"] \
            == ["submitted", "running", "done"]
        assert [r["ev"] for r in keep if r["job"] == "j2"] \
            == ["submitted", "running", "retry"]


# --- synchronous service tests (no sockets) --------------------------------


def _service(out_dir, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("backoff", 0.05)
    return ExperimentService(str(out_dir), **kwargs)


def _drive(service, pred, timeout=60.0):
    """Tick the scheduler until *pred*() holds (wall-clock bounded)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        service.tick()
        if pred():
            return
        time.sleep(0.01)
    raise AssertionError(f"scheduler never reached the expected state; "
                         f"jobs: {[(j.spec.id, j.status) for j in service.jobs.values()]}")


def _all_terminal(service):
    return lambda: all(j.terminal for j in service.jobs.values())


class TestServiceCore:
    def test_submit_run_publish(self, tmp_path):
        svc = _service(tmp_path / "out")
        svc.open()
        (job,) = svc.submit(dict(FAST_JOB, id="j1"))
        assert job.status == QUEUED
        _drive(svc, _all_terminal(svc))
        assert job.status == DONE and job.attempts == 1
        assert Path(job.result).read_bytes()
        svc.close()
        records, torn = read_journal(svc.journal_path)
        assert not torn
        assert fold_serve(records)["j1"]["status"] == DONE

    def test_duplicate_key_served_from_memo_without_second_run(self, tmp_path):
        svc = _service(tmp_path / "out")
        svc.open()
        svc.submit(dict(FAST_JOB, id="a"))
        _drive(svc, _all_terminal(svc))
        (dup,) = svc.submit(dict(FAST_JOB, id="b"))
        # answered at admission: no queue slot, no worker
        assert dup.status == DONE and dup.cached and dup.attempts == 0
        assert svc.counters.snapshot()["serve.memo_served"] == 1
        svc.close()

    def test_identical_configs_in_flight_run_once(self, tmp_path):
        svc = _service(tmp_path / "out", workers=4)
        svc.open()
        jobs = svc.submit([dict(FAST_JOB, id=f"j{i}") for i in range(4)])
        assert len({j.key for j in jobs}) == 1
        _drive(svc, _all_terminal(svc))
        # one spawn; the other three were deduplicated onto its result
        assert sum(j.attempts for j in jobs) == 1
        assert all(j.status == DONE for j in jobs)
        svc.close()

    def test_queue_cap_rejects_with_busy(self, tmp_path):
        svc = _service(tmp_path / "out", queue_cap=2, client_cap=100)
        svc.open()
        svc.submit([{"id": "a", "command": "fig4"},
                    {"id": "b", "command": "fig3"}])
        with pytest.raises(Busy) as exc:
            svc.submit({"id": "c", "command": "pingpong"})
        assert exc.value.status == 429
        assert exc.value.retry_after is not None
        assert svc.counters.snapshot()["serve.rejected.backpressure"] == 1
        svc.close()

    def test_client_cap_is_per_client(self, tmp_path):
        svc = _service(tmp_path / "out", client_cap=1, queue_cap=100)
        svc.open()
        svc.submit({"id": "a", "command": "fig4"}, client="alice")
        with pytest.raises(Busy):
            svc.submit({"id": "b", "command": "fig3"}, client="alice")
        # a different client is unaffected
        svc.submit({"id": "c", "command": "fig3"}, client="bob")
        svc.close()

    def test_abandon_releases_client_slot(self, tmp_path):
        svc = _service(tmp_path / "out", client_cap=1, queue_cap=100)
        svc.open()
        svc.submit({"id": "a", "command": "fig4"}, client="alice")
        svc.abandon("a")
        assert svc.client_inflight("alice") == 0
        # the freed slot admits alice's next job; the first still runs
        svc.submit({"id": "b", "command": "fig3"}, client="alice")
        assert svc.counters.snapshot()["serve.disconnects"] == 1
        _drive(svc, _all_terminal(svc))
        assert all(j.status == DONE for j in svc.jobs.values())
        svc.close()

    def test_conflicting_resubmission_409_idempotent_200(self, tmp_path):
        svc = _service(tmp_path / "out")
        svc.open()
        svc.submit(dict(FAST_JOB, id="a"))
        (same,) = svc.submit(dict(FAST_JOB, id="a"))  # idempotent
        assert same.spec.id == "a"
        with pytest.raises(Conflict):
            svc.submit({"id": "a", "command": "fig4"})
        svc.close()

    def test_draining_rejects_admissions(self, tmp_path):
        svc = _service(tmp_path / "out")
        svc.open()
        svc.begin_drain("test")
        with pytest.raises(Draining) as exc:
            svc.submit(dict(FAST_JOB, id="x"))
        assert exc.value.status == 503
        svc.close()

    def test_expired_in_queue_is_rejected_not_run(self, tmp_path):
        svc = _service(tmp_path / "out", workers=1, chaos=STALL_CHAOS,
                       retries=0)
        svc.open()
        # the stalled job owns the only worker...
        (wedge,) = svc.submit({"id": "wedge", "command": "faults",
                               "timeout": 120})
        svc.tick()
        assert wedge.status == RUNNING
        # ...so this one expires in the queue and must never spawn
        (doomed,) = svc.submit(dict(FAST_JOB, id="doomed"), deadline_s=0.2)
        _drive(svc, lambda: doomed.terminal, timeout=30)
        assert doomed.status == REJECTED
        assert doomed.attempts == 0
        assert "deadline" in doomed.detail
        assert svc.counters.snapshot()["serve.rejected.deadline"] == 1
        # teardown: kill the wedged worker the way a drain would
        svc.begin_drain("test")
        svc._kill_all_running("drain-deadline")
        svc.close()

    def test_deadline_bounds_worker_runtime(self, tmp_path):
        svc = _service(tmp_path / "out", workers=1, chaos=STALL_CHAOS,
                       retries=0)
        svc.open()
        # stalled worker + 0.5s deadline: the kill budget is the
        # remaining deadline, so the attempt dies and cannot retry
        (job,) = svc.submit({"id": "wedge", "command": "faults",
                             "timeout": 120}, deadline_s=0.5)
        _drive(svc, lambda: job.terminal, timeout=30)
        assert job.status == "failed"
        assert "deadline exceeded" in job.detail
        svc.close()

    def test_permanent_failure_fails_fast(self, tmp_path):
        svc = _service(tmp_path / "out", retries=3)
        svc.open()
        # a bad flag makes the driver exit 2 deterministically
        (job,) = svc.submit({"id": "bad", "command": "faults",
                             "args": ["--fault-plan", "no_such_fault=1"]})
        _drive(svc, _all_terminal(svc))
        assert job.status == "failed"
        assert job.attempts == 1  # exactly one attempt, 3 retries unused
        assert "permanent" in job.detail
        assert svc.counters.snapshot()["serve.failed.permanent"] == 1
        svc.close()

    def test_crash_retries_with_jittered_backoff(self, tmp_path):
        chaos = parse_chaos("kill-worker:p=1.0", seed=3)
        svc = _service(tmp_path / "out", chaos=chaos, retries=2,
                       retry_seed=7)
        svc.open()
        (job,) = svc.submit(dict(FAST_JOB, id="j1"))
        _drive(svc, _all_terminal(svc))
        # first attempt chaos-killed, second (never sabotaged) succeeds
        assert job.status == DONE and job.attempts == 2
        assert svc.counters.snapshot()["serve.crashes"] == 1
        assert svc.counters.snapshot()["serve.retries"] == 1
        records, _ = read_journal(svc.journal_path)
        (retry,) = [r for r in records if r["ev"] == "retry"]
        assert 0.0 <= retry["backoff_s"] <= svc.backoff
        svc.close()

    def test_shutdown_report_summarizes_outcomes(self, tmp_path):
        import io

        stream = io.StringIO()
        svc = _service(tmp_path / "out", stream=stream)
        svc.open()
        svc.submit([dict(FAST_JOB, id="a"), dict(FAST_JOB, id="b")])
        _drive(svc, _all_terminal(svc))
        svc.close()
        report = stream.getvalue()
        assert "serve report" in report
        assert "2 admitted: 2 done (1 from the memo cache)" in report
        assert "done (memo)" in report

    def test_bad_spec_raises_spec_error(self, tmp_path):
        svc = _service(tmp_path / "out")
        svc.open()
        with pytest.raises(SpecError):
            svc.submit({"command": "serve"})  # recursion denied
        with pytest.raises(SpecError):
            svc.submit({"no_command": True})
        with pytest.raises(SpecError):
            svc.submit(dict(FAST_JOB, id="x"), deadline_s=-1)
        svc.close()

    def test_preflight_rejects_bad_config(self, tmp_path):
        for kwargs in ({"workers": 0}, {"queue_cap": 0},
                       {"client_cap": 0}, {"retries": -1},
                       {"drain_timeout": 0}):
            with pytest.raises(ServeError):
                _service(tmp_path / "out", **kwargs)

    def test_existing_journal_requires_resume(self, tmp_path):
        svc = _service(tmp_path / "out")
        svc.open()
        svc.close()
        with pytest.raises(ServeError) as exc:
            _service(tmp_path / "out").open()
        assert "--resume" in str(exc.value)


class TestServiceRecovery:
    def test_replay_restores_exact_queue_state(self, tmp_path):
        svc1 = _service(tmp_path / "out", workers=1, chaos=STALL_CHAOS)
        svc1.open()
        svc1.submit([
            {"id": "wedged", "command": "faults", "timeout": 120},
            dict(FAST_JOB, id="queued"),
        ], client="c1")
        svc1.tick()  # spawns the wedged job
        running = svc1._running()
        assert [j.spec.id for j in running] == ["wedged"]
        # simulate SIGKILL: kill the worker, never close the journal
        for job in running:
            job.proc.kill()
            job.proc.join()
        svc2 = _service(tmp_path / "out", resume=True)
        svc2.open()
        assert set(svc2.jobs) == {"wedged", "queued"}
        assert all(j.status == QUEUED for j in svc2.jobs.values())
        wedged = svc2.jobs["wedged"]
        assert wedged.attempts == 1  # the dead attempt still counts...
        assert wedged.client == "c1"
        _drive(svc2, _all_terminal(svc2))
        # ...which is why chaos (first-attempt-only) cannot re-wedge it
        assert all(j.status == DONE for j in svc2.jobs.values())
        svc2.close()

    def test_done_jobs_stay_done_across_restart(self, tmp_path):
        svc1 = _service(tmp_path / "out")
        svc1.open()
        svc1.submit(dict(FAST_JOB, id="j1"))
        _drive(svc1, _all_terminal(svc1))
        result = Path(svc1.jobs["j1"].result)
        bytes_before = result.read_bytes()
        mtime = result.stat().st_mtime_ns
        svc2 = _service(tmp_path / "out", resume=True)
        svc2.open()
        job = svc2.jobs["j1"]
        assert job.status == DONE and job.result == str(result)
        svc2.close()
        assert result.read_bytes() == bytes_before
        assert result.stat().st_mtime_ns == mtime  # never re-published

    def test_corrupt_done_result_requeues_on_restart(self, tmp_path):
        svc1 = _service(tmp_path / "out")
        svc1.open()
        svc1.submit(dict(FAST_JOB, id="j1"))
        _drive(svc1, _all_terminal(svc1))
        result = Path(svc1.jobs["j1"].result)
        good = result.read_bytes()
        result.write_bytes(b"bit rot\n")
        svc2 = _service(tmp_path / "out", resume=True)
        svc2.open()
        assert svc2.jobs["j1"].status == QUEUED  # sidecar check failed
        assert svc2.counters.snapshot()["memo.corrupt"] >= 1
        _drive(svc2, _all_terminal(svc2))
        assert result.read_bytes() == good  # re-run republished
        svc2.close()

    def test_deadline_expired_while_down_is_rejected(self, tmp_path):
        svc1 = _service(tmp_path / "out")
        svc1.open()
        svc1.submit(dict(FAST_JOB, id="late"), deadline_s=0.05)
        # the server "dies" before running it; the deadline passes
        time.sleep(0.1)
        svc2 = _service(tmp_path / "out", resume=True)
        svc2.open()
        job = svc2.jobs["late"]
        assert job.status == REJECTED
        assert "server was down" in job.detail
        records, _ = read_journal(svc2.journal_path)
        assert fold_serve(records)["late"]["status"] == REJECTED
        svc2.close()

    def test_journal_compacts_across_many_submissions(self, tmp_path):
        svc = _service(tmp_path / "out", queue_cap=500, client_cap=500)
        svc.open()
        svc._journal._every = 32
        svc.submit([dict(FAST_JOB, id=f"j{i}") for i in range(100)])
        _drive(svc, _all_terminal(svc))
        svc.close()
        records, torn = read_journal(svc.journal_path)
        assert not torn
        # 100 submissions folded down: compaction kept the journal at
        # O(jobs), one submitted + one done line each, plus bookkeeping
        assert len(records) <= 2 * 100 + 10
        folded = fold_serve(records)
        assert len(folded) == 100
        assert all(st["status"] == DONE for st in folded.values())


# --- end-to-end HTTP tests --------------------------------------------------


class _LiveServer:
    """An in-process serve instance on an ephemeral port."""

    def __init__(self, tmp_path, **kwargs):
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("backoff", 0.05)
        self.service = ExperimentService(str(tmp_path), **kwargs)
        self.port = None
        self._server = None
        self._sched = None

    async def __aenter__(self):
        self.service.open()
        app = ServeApp(self.service)
        self._server = await asyncio.start_server(  # detlint: ignore[socket-io]
            app.handle, host="127.0.0.1", port=0)
        self.port = self._server.sockets[0].getsockname()[1]
        self._sched = asyncio.create_task(self.service.run_scheduler())
        return self

    async def __aexit__(self, *exc):
        if not self.service.draining:
            self.service.begin_drain("test-teardown")
            self.service._drain_deadline = time.monotonic() + 1.0
        await asyncio.wait_for(self._sched, timeout=30)
        self._server.close()
        await self._server.wait_closed()
        self.service.close()

    async def request(self, method, path, body=None, headers=None):
        reader, writer = await asyncio.open_connection(  # detlint: ignore[socket-io]
            "127.0.0.1", self.port)
        payload = json.dumps(body).encode() if body is not None else b""
        lines = [f"{method} {path} HTTP/1.1", "Host: test",
                 f"Content-Length: {len(payload)}"]
        lines += [f"{k}: {v}" for k, v in (headers or {}).items()]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
        await writer.drain()
        raw = await reader.read(-1)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        head, _, body_bytes = raw.partition(b"\r\n\r\n")
        head_lines = head.decode().split("\r\n")
        status = int(head_lines[0].split(" ")[1])
        hdrs = {}
        for line in head_lines[1:]:
            name, _, value = line.partition(":")
            hdrs[name.strip().lower()] = value.strip()
        return status, hdrs, body_bytes

    async def request_json(self, method, path, body=None, headers=None):
        status, hdrs, raw = await self.request(method, path, body, headers)
        return status, hdrs, json.loads(raw)


class TestHttpEndToEnd:
    def test_submit_wait_fetch_result(self, tmp_path):
        async def run():
            async with _LiveServer(tmp_path / "out") as srv:
                st, _, doc = await srv.request_json("GET", "/healthz")
                assert (st, doc) == (200, {"ok": True})
                st, _, doc = await srv.request_json("GET", "/readyz")
                assert st == 200 and doc["ready"]
                st, _, doc = await srv.request_json(
                    "POST", "/jobs?wait=1", dict(FAST_JOB, id="j1"))
                assert st == 200
                (job,) = doc["jobs"]
                assert job["status"] == "done" and not job["cached"]
                st, _, raw = await srv.request("GET", "/jobs/j1/result")
                assert st == 200 and b"breakdown" in raw
                # an identical config from another client: cache hit
                st, _, doc = await srv.request_json(
                    "POST", "/jobs?wait=1", dict(FAST_JOB, id="j2"),
                    headers={"X-Client": "other"})
                assert doc["jobs"][0]["cached"]
                st, _, doc = await srv.request_json("GET", "/stats")
                assert doc["counters"]["serve.completed"] == 2
                assert doc["counters"]["serve.memo_served"] == 1
        asyncio.run(run())

    def test_backpressure_and_retry_after(self, tmp_path):
        async def run():
            async with _LiveServer(tmp_path / "out", workers=1,
                                   queue_cap=2, client_cap=100,
                                   chaos=STALL_CHAOS, retries=0,
                                   drain_timeout=1.0) as srv:
                st, _, _doc = await srv.request_json(
                    "POST", "/jobs",
                    [{"id": "wedged", "command": "faults", "timeout": 120},
                     {"id": "parked", "command": "fig4"}])
                assert st == 200
                st, hdrs, doc = await srv.request_json(
                    "POST", "/jobs", {"id": "refused", "command": "fig3"})
                assert st == 429
                assert "retry-after" in hdrs
                assert int(hdrs["retry-after"]) >= 1
                assert "queue is full" in doc["error"]
        asyncio.run(run())

    def test_bad_requests_get_4xx_not_500(self, tmp_path):
        async def run():
            async with _LiveServer(tmp_path / "out") as srv:
                st, _, _h = await srv.request("POST", "/jobs",
                                              {"command": "serve"})
                assert st == 400
                st, _, _h = await srv.request("GET", "/jobs/ghost")
                assert st == 404
                st, _, _h = await srv.request("DELETE", "/jobs/ghost")
                assert st == 405
                st, _, _h = await srv.request(
                    "POST", "/jobs", dict(FAST_JOB, id="x"),
                    headers={"X-Deadline": "soon"})
                assert st == 400
                # malformed body
                reader, writer = await asyncio.open_connection(  # detlint: ignore[socket-io]
                    "127.0.0.1", srv.port)
                writer.write(b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
                             b"Content-Length: 3\r\n\r\n{{{")
                await writer.drain()
                raw = await reader.read(-1)
                assert b" 400 " in raw.split(b"\r\n")[0]
                writer.close()
        asyncio.run(run())

    def test_deadline_expired_in_queue_rejected_over_http(self, tmp_path):
        async def run():
            async with _LiveServer(tmp_path / "out", workers=1,
                                   chaos=STALL_CHAOS, retries=0,
                                   drain_timeout=1.0) as srv:
                await srv.request_json(
                    "POST", "/jobs",
                    {"id": "wedged", "command": "faults", "timeout": 120})
                st, _, _doc = await srv.request_json(
                    "POST", "/jobs", dict(FAST_JOB, id="doomed"),
                    headers={"X-Deadline": "0.2"})
                assert st == 200
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    st, _, doc = await srv.request_json("GET", "/jobs/doomed")
                    if doc["status"] in ("done", "failed", "rejected"):
                        break
                    await asyncio.sleep(0.05)
                assert doc["status"] == "rejected"
                assert doc["attempts"] == 0
                st, _, _raw = await srv.request("GET", "/jobs/doomed/result")
                assert st == 404
        asyncio.run(run())

    def test_client_disconnect_releases_slot_job_completes(self, tmp_path):
        async def run():
            async with _LiveServer(tmp_path / "out", workers=1,
                                   client_cap=1, chaos=STALL_CHAOS,
                                   retries=1, drain_timeout=1.0) as srv:
                svc = srv.service
                # stall chaos wedges every first attempt; timeouts cut
                # them loose and the (never-sabotaged) retries succeed.
                # the wedged job owns the only worker, so "slow" waits
                # in queue behind it
                await srv.request_json(
                    "POST", "/jobs",
                    {"id": "wedged", "command": "faults", "timeout": 0.4},
                    headers={"X-Client": "zoe"})
                # a waiting client from another identity...
                reader, writer = await asyncio.open_connection(  # detlint: ignore[socket-io]
                    "127.0.0.1", srv.port)
                payload = json.dumps(
                    dict(FAST_JOB, id="slow", timeout=0.5)).encode()
                writer.write((
                    "POST /jobs?wait=1 HTTP/1.1\r\nHost: t\r\n"
                    "X-Client: impatient\r\n"
                    f"Content-Length: {len(payload)}\r\n\r\n"
                ).encode() + payload)
                await writer.drain()
                # ...hangs up without reading the response
                deadline = time.monotonic() + 10
                while svc.client_inflight("impatient") != 1:
                    assert time.monotonic() < deadline
                    await asyncio.sleep(0.02)
                writer.close()
                deadline = time.monotonic() + 10
                while svc.counters.snapshot().get("serve.disconnects", 0) < 1:
                    assert time.monotonic() < deadline, \
                        "disconnect never detected"
                    await asyncio.sleep(0.02)
                assert svc.client_inflight("impatient") == 0
                # the abandoned job still runs to completion and its
                # result lands in the memo cache for the next caller
                deadline = time.monotonic() + 30
                while True:
                    st, _, doc = await srv.request_json("GET", "/jobs/slow")
                    if doc["status"] == "done":
                        break
                    assert time.monotonic() < deadline
                    await asyncio.sleep(0.05)
                st, _, doc = await srv.request_json(
                    "POST", "/jobs?wait=1", dict(FAST_JOB, id="again"))
                assert doc["jobs"][0]["cached"]
        asyncio.run(run())

    def test_drain_flips_readiness_and_rejects(self, tmp_path):
        async def run():
            async with _LiveServer(tmp_path / "out") as srv:
                srv.service.begin_drain("test")
                st, _, doc = await srv.request_json("GET", "/readyz")
                assert st == 503 and doc["draining"]
                st, _, doc = await srv.request_json("GET", "/healthz")
                assert st == 200  # alive, just not admitting
                st, hdrs, doc = await srv.request_json(
                    "POST", "/jobs", dict(FAST_JOB, id="x"))
                assert st == 503
                assert "draining" in doc["error"]
        asyncio.run(run())

    def test_soak_hundreds_of_specs_dedup_via_memo(self, tmp_path):
        # 240 submissions over 6 unique configs: exactly 6 worker runs,
        # everything else answered from the memo cache
        async def run():
            async with _LiveServer(tmp_path / "out", workers=4,
                                   queue_cap=300, client_cap=300) as srv:
                unique = [{"command": "breakdown", "args": ["--mb", str(m)]}
                          for m in (1, 2, 3, 4, 5, 6)]
                specs = [dict(unique[i % 6], id=f"j{i:03d}")
                         for i in range(240)]
                for lo in range(0, 240, 60):
                    st, _, _doc = await srv.request_json(
                        "POST", "/jobs", specs[lo:lo + 60])
                    assert st == 200
                svc = srv.service
                deadline = time.monotonic() + 120
                while not all(j.terminal for j in svc.jobs.values()):
                    assert time.monotonic() < deadline, "soak stalled"
                    await asyncio.sleep(0.1)
                assert len(svc.jobs) == 240
                assert all(j.status == "done" for j in svc.jobs.values())
                assert sum(j.attempts for j in svc.jobs.values()) == 6
                counters = svc.counters.snapshot()
                assert counters["serve.completed"] == 240
                assert counters["serve.memo_served"] == 234
                # and the journal folds to 240 done jobs
                st, _, doc = await srv.request_json("GET", "/stats")
                assert doc["queue"]["by_status"] == {"done": 240}
        asyncio.run(run())
        records, torn = read_journal(str(tmp_path / "out" / "serve.jsonl"))
        assert not torn
        folded = fold_serve(records)
        assert len(folded) == 240
        assert all(st["status"] == DONE for st in folded.values())


# --- subprocess chaos tests -------------------------------------------------


SERVE_SPECS = [
    {"id": "bd1", "command": "breakdown", "args": ["--mb", "1"]},
    {"id": "bd2", "command": "breakdown", "args": ["--mb", "2"]},
    {"id": "f4", "command": "fig4"},
    {"id": "reg", "command": "registration"},
]


def _http(addr, method, path, body=None, headers=None, timeout=30):
    host, port = addr.split(":")
    with socket.create_connection((host, int(port)), timeout=timeout) as s:
        payload = json.dumps(body).encode() if body is not None else b""
        head = (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(payload)}\r\n")
        for key, value in (headers or {}).items():
            head += f"{key}: {value}\r\n"
        s.sendall(head.encode() + b"\r\n" + payload)
        raw = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            raw += chunk
    head_b, _, body_b = raw.partition(b"\r\n\r\n")
    return int(head_b.split(b" ")[1]), body_b


def _start_serve(out_dir, *extra, cwd):
    addr_file = Path(out_dir) / "serve.addr"
    addr_file.unlink(missing_ok=True)
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--out-dir", str(out_dir), "--workers", "2", *extra],
        env=env, cwd=str(cwd),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"serve exited early: {proc.communicate()[1]}")
        if addr_file.exists() and addr_file.read_text().strip():
            return proc, addr_file.read_text().strip()
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("serve never published its address")


def _results_by_key(out_dir):
    return {p.name: p.read_bytes()
            for p in (Path(out_dir) / "results").glob("*.out")}


class TestServeCrashRecovery:
    def test_sigkill_restart_resume_byte_identical(self, tmp_path):
        # baseline: the same configs through the batch runner, no chaos
        specfile = tmp_path / "specs.json"
        specfile.write_text(json.dumps(SERVE_SPECS))
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        baseline = subprocess.run(
            [sys.executable, "-m", "repro", "batch", str(specfile),
             "--out-dir", str(tmp_path / "plain"), "--jobs", "2"],
            env=env, cwd=str(tmp_path), capture_output=True, text=True,
            timeout=120)
        assert baseline.returncode == 0, baseline.stderr
        expected = _results_by_key(tmp_path / "plain")
        assert len(expected) == len(SERVE_SPECS)

        out = tmp_path / "srv"
        out.mkdir()
        chaos = ["--chaos", "kill-worker:p=1.0", "--chaos-seed", "1",
                 "--backoff", "0.2"]
        proc, addr = _start_serve(out, *chaos, cwd=tmp_path)
        st, _ = _http(addr, "POST", "/jobs", SERVE_SPECS)
        assert st == 200
        # wait until work is journalled as running, then SIGKILL the
        # server mid-batch — no drain, no flush, no goodbye
        journal = out / "serve.jsonl"
        deadline = time.monotonic() + 30
        while '"ev":"running"' not in journal.read_text():
            assert time.monotonic() < deadline
            time.sleep(0.02)
        proc.kill()
        proc.wait(timeout=30)
        time.sleep(1.0)  # let orphaned workers wind down

        # restart: replay the journal, finish everything
        proc2, addr2 = _start_serve(out, *chaos, "--resume", cwd=tmp_path)
        deadline = time.monotonic() + 120
        while True:
            st, body = _http(addr2, "GET", "/jobs")
            jobs = json.loads(body)["jobs"]
            assert {j["id"] for j in jobs} == {s["id"] for s in SERVE_SPECS}, \
                "a job was lost across the crash"
            if all(j["status"] == "done" for j in jobs):
                break
            assert time.monotonic() < deadline, f"stalled: {jobs}"
            time.sleep(0.1)
        # graceful goodbye: SIGTERM drains and exits 0
        proc2.send_signal(signal.SIGTERM)
        _stdout, stderr2 = proc2.communicate(timeout=60)
        assert proc2.returncode == 0, stderr2
        assert "draining (SIGTERM)" in stderr2

        # the headline guarantee: a SIGKILLed, replayed, chaos-ridden
        # service produces byte-identical results to the clean run
        assert _results_by_key(out) == expected
        # and the journal agrees: every job done exactly once
        records, torn = read_journal(str(journal))
        assert not torn
        folded = fold_serve(records)
        assert sorted(folded) == sorted(s["id"] for s in SERVE_SPECS)
        assert all(st["status"] == DONE for st in folded.values())

    def test_sigint_drains_and_requeues_stragglers(self, tmp_path):
        out = tmp_path / "srv"
        out.mkdir()
        proc, addr = _start_serve(
            out, "--chaos", "stall:p=1.0", "--drain-timeout", "0.5",
            "--workers", "1", cwd=tmp_path)
        st, _ = _http(addr, "POST", "/jobs",
                      [{"id": "wedged", "command": "faults",
                        "timeout": 300}])
        assert st == 200
        journal = out / "serve.jsonl"
        deadline = time.monotonic() + 30
        while '"ev":"running"' not in journal.read_text():
            assert time.monotonic() < deadline
            time.sleep(0.02)
        proc.send_signal(signal.SIGINT)
        _stdout, stderr = proc.communicate(timeout=60)
        # the wedged worker blew the drain deadline, was killed, and
        # the drain still completed cleanly
        assert proc.returncode == 0, stderr
        assert "drain deadline" in stderr
        records, torn = read_journal(str(journal))
        assert not torn
        # the killed job folded back to queued: owed an answer on the
        # next start, not lost, not failed
        assert fold_serve(records)["wedged"]["status"] == QUEUED


# --- CLI surface ------------------------------------------------------------


class TestServeCLI:
    def test_bad_chaos_exits_2(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             "--out-dir", str(tmp_path / "out"), "--chaos", "bogus:p=x"],
            env=env, capture_output=True, text=True, timeout=60)
        assert proc.returncode == 2
        assert "--chaos" in proc.stderr

    def test_journal_collision_exits_2(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        (out / "serve.jsonl").write_text("")
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--out-dir", str(out)],
            env=env, capture_output=True, text=True, timeout=60)
        assert proc.returncode == 2
        assert "--resume" in proc.stderr

    def test_serve_denied_as_its_own_job_command(self):
        # the service must not be able to recurse into itself
        from repro.batch.spec import parse_jobs_doc

        with pytest.raises(SpecError) as exc:
            parse_jobs_doc({"command": "serve"})
        assert "serve" in str(exc.value)
