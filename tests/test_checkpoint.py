"""Checkpoint/restore: snapshot files, cluster capture, run ledger,
watchdog.

The load-bearing guarantee under test: a cluster captured at a quiescent
boundary and restored continues **bit-identically** to the uninterrupted
original — same clock, same CQE sequences, same counters, same fault-RNG
draws — and a checkpointed CLI-style run resumed from any snapshot
reproduces the uninterrupted run's results exactly.
"""

import io
import os
import tempfile
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    SCHEMA,
    CheckpointError,
    HangWatchdog,
    RunCheckpointer,
    _count_next,
    capture_cluster,
    is_quiescent,
    read_snapshot,
    restore_cluster,
    write_snapshot,
)
from repro.engine import core as engine_core
from repro.faults import FaultPlan
from repro.ib.hca import HCA
from repro.ib.verbs import SGE, CompletionQueue, ProtectionDomain, SendWR
from repro.systems import Cluster, presets
from repro.workloads.imb import SendRecvBenchmark
from repro.workloads.nas import KERNELS
from repro.workloads.nas.common import run_nas

KB = 1024
MB = 1024 * 1024


# ---------------------------------------------------------------------------
# snapshot files
# ---------------------------------------------------------------------------

class TestSnapshotFiles:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "a.snap")
        payload = {"hello": [1, 2, 3], "nested": {"x": (4, 5)}}
        manifest = write_snapshot(path, payload, meta={"kind": "test"})
        assert manifest["schema"] == SCHEMA
        got_manifest, got = read_snapshot(path)
        assert got == payload
        assert got_manifest["meta"] == {"kind": "test"}
        # the manifest is one plain-JSON line a human can inspect
        with open(path, "rb") as fh:
            import json

            assert json.loads(fh.readline()) == got_manifest

    def test_corrupt_body_fails_integrity_check(self, tmp_path):
        path = str(tmp_path / "a.snap")
        write_snapshot(path, {"x": 1})
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError, match="integrity check failed"):
            read_snapshot(path)

    def test_garbage_file_has_no_manifest(self, tmp_path):
        path = str(tmp_path / "a.snap")
        open(path, "w").write("certainly not a snapshot\n")
        with pytest.raises(CheckpointError, match="no snapshot manifest"):
            read_snapshot(path)

    def test_unknown_schema_is_refused(self, tmp_path):
        import hashlib
        import json
        import pickle

        path = str(tmp_path / "a.snap")
        body = pickle.dumps({"x": 1})
        manifest = {"schema": "repro-checkpoint/999",
                    "sha256": hashlib.sha256(body).hexdigest(),
                    "payload_bytes": len(body), "meta": {}}
        with open(path, "wb") as fh:
            fh.write(json.dumps(manifest).encode() + b"\n")
            fh.write(body)
        with pytest.raises(CheckpointError, match="unsupported snapshot schema"):
            read_snapshot(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read snapshot"):
            read_snapshot(str(tmp_path / "absent.snap"))


# ---------------------------------------------------------------------------
# quiescence
# ---------------------------------------------------------------------------

class TestQuiescence:
    def test_capture_refuses_pending_events(self):
        cluster = Cluster(presets.opteron_infinihost_pcie(), 2)

        def proc():
            yield cluster.kernel.timeout(10)

        cluster.kernel.process(proc())
        assert not is_quiescent(cluster)
        with pytest.raises(CheckpointError, match="not at a quiescent boundary"):
            capture_cluster(cluster)
        # forensic capture is allowed, but restore refuses it
        snap = capture_cluster(cluster, require_quiescent=False)
        assert snap["quiescent"] is False
        assert snap["kernel"]["queue_length"] >= 1
        with pytest.raises(CheckpointError, match="forensic only"):
            restore_cluster(snap)
        cluster.kernel.run()  # drain so the cluster dies quiescent

    def test_drained_run_until_stamps_real_tick(self):
        """Regression: ``run(until=T)`` used to fast-forward the clock to
        T even when the queue drained earlier, so a snapshot taken after
        such a run stamped a tick no event ever reached — and a resumed
        run disagreed with an uninterrupted one on every later timestamp."""
        cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
        k = cluster.kernel

        def proc():
            yield k.timeout(10)

        k.process(proc())
        k.run(until=1_000_000)
        assert k.now == 10  # not 1_000_000
        snap = capture_cluster(cluster)
        assert snap["kernel"]["now"] == 10
        restored = restore_cluster(snap)
        assert restored.kernel.now == 10

    def test_restore_refuses_wrong_kind(self):
        with pytest.raises(CheckpointError, match="not a cluster snapshot"):
            restore_cluster({"kind": "run-ledger"})


# ---------------------------------------------------------------------------
# capture -> restore -> continue bit-identically
# ---------------------------------------------------------------------------

def _verbs_pair(fault_plan=None):
    cluster = Cluster(presets.opteron_infinihost_pcie(), 2,
                      fault_plan=fault_plan)
    k = cluster.kernel
    a, b = cluster.nodes
    pa, pb = a.new_process(), b.new_process()
    buf_a = pa.aspace.mmap(MB).start
    buf_b = pb.aspace.mmap(MB).start
    pd_a, pd_b = ProtectionDomain.fresh(), ProtectionDomain.fresh()
    cqs = {name: CompletionQueue(k) for name in ("sa", "ra", "sb", "rb")}
    qa = a.hca.create_qp(pd_a, cqs["sa"], cqs["ra"])
    qb = b.hca.create_qp(pd_b, cqs["sb"], cqs["rb"])
    HCA.connect_pair(qa, a.hca, qb, b.hca)
    return cluster, (a, pa, buf_a, pd_a, qa), (b, pb, buf_b, pd_b, qb), cqs


def _run_writes(cluster, qp_num, lkey, rkey, buf_a, buf_b, wr_ids):
    """Post rdma_writes on node-0's QP *qp_num* and drain to quiescence;
    works on an original or a restored cluster alike."""
    a = cluster.nodes[0]
    qp = a.hca._qps[qp_num]
    k = cluster.kernel
    statuses = []

    def sender():
        for wr_id in wr_ids:
            yield from a.hca.post_send(qp, SendWR(
                wr_id=wr_id, sges=[SGE(buf_a, 4 * KB, lkey)],
                opcode="rdma_write", remote_addr=buf_b, rkey=rkey,
            ))
            wc = yield from a.hca.wait_completion(qp.send_cq)
            statuses.append((wc.wr_id, wc.status))

    k.process(sender())
    k.run()
    return statuses, k.now, cluster.aggregate_counters()


class TestClusterRestore:
    @pytest.mark.parametrize("plan", [
        None,
        FaultPlan(link_loss=0.05, seed=3, retry_cnt=7, ack_timeout_ns=20_000.0),
    ], ids=["no-faults", "lossy-link"])
    def test_restored_cluster_continues_bit_identically(self, tmp_path, plan):
        cluster, (a, pa, buf_a, pd_a, qa), (b, pb, buf_b, pd_b, qb), cqs = \
            _verbs_pair(plan)
        k = cluster.kernel
        mrs = {}

        def setup():
            mrs["a"] = yield from a.hca.register_memory(pa.aspace, pd_a, buf_a, MB)
            mrs["b"] = yield from b.hca.register_memory(pb.aspace, pd_b, buf_b, MB)

        k.process(setup())
        k.run()
        lkey, rkey = mrs["a"].lkey, mrs["b"].rkey
        # phase 1: traffic before the checkpoint
        _run_writes(cluster, qa.qp_num, lkey, rkey, buf_a, buf_b, [1, 2])

        assert is_quiescent(cluster)
        snap = capture_cluster(cluster)
        # full fidelity: through the on-disk pickle, not just in memory
        path = str(tmp_path / "mid.snap")
        write_snapshot(path, snap)
        _, payload = read_snapshot(path)

        # phase 2 on the uninterrupted original...
        original = _run_writes(cluster, qa.qp_num, lkey, rkey,
                               buf_a, buf_b, [3, 4])
        # ...and the identical continuation on the restored cluster
        restored_cluster = restore_cluster(payload)
        assert restored_cluster.kernel.now == snap["kernel"]["now"]
        restored = _run_writes(restored_cluster, qa.qp_num, lkey, rkey,
                               buf_a, buf_b, [3, 4])

        assert restored == original  # statuses, final clock, all counters

    def test_module_id_counters_rewound(self):
        from repro.ib import verbs

        cluster, *_ = _verbs_pair(None)
        cluster.kernel.run()
        snap = capture_cluster(cluster)
        at_capture = _count_next(verbs._ids)
        ProtectionDomain.fresh()  # consume ids after the capture
        ProtectionDomain.fresh()
        assert _count_next(verbs._ids) == at_capture + 2
        restore_cluster(snap)
        assert _count_next(verbs._ids) == at_capture

    def test_restored_qp_keeps_send_queue_depth(self):
        """Regression (found by simlint checkpoint-coverage): restore
        rebuilt every QP with the default send-queue depth, so a QP
        checkpointed with a small ``max_send_wr`` resumed with 128
        slots and stopped back-pressuring where the original blocked."""
        cluster, (a, pa, buf_a, pd_a, qa), _bside, cqs = _verbs_pair(None)
        cluster.kernel.run()
        # a supported configuration: a shallow send queue, as exercised
        # by the QP-depth sweep in test_ft_and_qp_depth
        qa.max_send_wr = 2
        qa.wr_slots.capacity = 2
        assert is_quiescent(cluster)
        snap = capture_cluster(cluster)
        restored = restore_cluster(snap)
        rqa = restored.nodes[0].hca._qps[qa.qp_num]
        assert rqa.max_send_wr == 2
        assert rqa.wr_slots.capacity == 2
        assert rqa.max_sge == qa.max_sge


# ---------------------------------------------------------------------------
# the run ledger
# ---------------------------------------------------------------------------

class TestRunCheckpointer:
    def test_caches_units_and_replays_from_snapshot(self, tmp_path):
        calls = []

        def unit(name, value, ticks):
            def fn():
                calls.append(name)
                return value, ticks, None
            return fn

        ck = RunCheckpointer("demo", ["demo", "--x"], directory=str(tmp_path),
                             every_ticks=0, stream=io.StringIO())
        assert ck.run_unit("u1", unit("u1", {"x": 1}, 10)) == {"x": 1}
        assert ck.run_unit("u2", unit("u2", [1, 2], 5)) == [1, 2]
        assert calls == ["u1", "u2"]
        assert os.path.exists(tmp_path / "latest.snap")

        _, payload = read_snapshot(str(tmp_path / "latest.snap"))
        assert payload["kind"] == "run-ledger"
        assert payload["command"] == "demo"
        assert payload["argv"] == ["demo", "--x"]

        resumed = RunCheckpointer("demo", ["demo", "--x"],
                                  preloaded_units=payload["units"],
                                  stream=io.StringIO())
        assert resumed.run_unit("u1", unit("u1", None, 0)) == {"x": 1}
        assert resumed.run_unit("u2", unit("u2", None, 0)) == [1, 2]
        assert calls == ["u1", "u2"]  # nothing re-executed

    def test_every_ticks_threshold(self, tmp_path):
        ck = RunCheckpointer("demo", [], directory=str(tmp_path),
                             every_ticks=100, stream=io.StringIO())
        ck.run_unit("a", lambda: (1, 40, None))
        assert ck.last_snapshot_path is None  # 40 < 100: not yet
        ck.run_unit("b", lambda: (2, 70, None))
        assert ck.last_snapshot_path is not None  # 110 >= 100
        _, payload = read_snapshot(ck.last_snapshot_path)
        assert sorted(payload["units"]) == ["a", "b"]

    def test_audit_runs_on_real_clusters(self, tmp_path):
        cluster = Cluster(presets.opteron_infinihost_pcie(), 2)
        ck = RunCheckpointer("demo", [], directory=str(tmp_path),
                             every_ticks=0, stream=io.StringIO())
        ck.run_unit("ok", lambda: (1, 0, cluster))  # clean: no raise
        from repro.audit import AuditError
        import heapq

        bad = Cluster(presets.opteron_infinihost_pcie(), 1)
        bad.kernel._now = 100
        bad.kernel._sched.push(50, 1, 0, bad.kernel.event())
        with pytest.raises(AuditError):
            ck.run_unit("bad", lambda: (1, 0, bad))
        bad.kernel._sched.clear()


# ---------------------------------------------------------------------------
# checkpoint-at-arbitrary-tick + resume == uninterrupted (property)
# ---------------------------------------------------------------------------

_BASELINES = {}


def _fig5_units(plan):
    bench = SendRecvBenchmark(presets.opteron_infinihost_pcie)
    units = {}
    for label, hp in (("small", False), ("huge", True)):
        def fn(hp=hp):
            res = bench.run([4 * KB, 64 * KB], hugepages=hp, lazy_dereg=True,
                            iterations=2, warmup=1, fault_plan=plan)
            cluster = bench.last_cluster
            return res, cluster.kernel.now, cluster
        units[f"fig5:{label}"] = fn
    return units


def _nas_units(plan):
    units = {}
    for label, hp in (("small", False), ("huge", True)):
        def fn(hp=hp):
            sink = []
            res = run_nas(KERNELS["EP"], presets.opteron_infinihost_pcie(),
                          hugepages=hp, klass="W", ppn=2,
                          nas_hugepage_pool=720, cluster_sink=sink,
                          fault_plan=plan)
            return res, sink[0].kernel.now, sink[0]
        units[f"nas:EP:{label}"] = fn
    return units


def _checkpoint_resume_equals_uninterrupted(kind, make_units, plan, every):
    """Run checkpointed, then resume from the FIRST snapshot (the
    'interruption point' the drawn tick threshold lands on) and require
    results identical to the uninterrupted run."""
    key = (kind, plan is not None)
    if key not in _BASELINES:  # simulation is deterministic: cache it
        ledger = RunCheckpointer(kind, [], stream=io.StringIO())
        _BASELINES[key] = {name: ledger.run_unit(name, fn)
                           for name, fn in make_units(plan).items()}
    baseline = _BASELINES[key]

    tmp = tempfile.mkdtemp(prefix="repro-ckpt-test-")
    ck = RunCheckpointer(kind, [], directory=tmp, every_ticks=every,
                         stream=io.StringIO())
    for name, fn in make_units(plan).items():
        ck.run_unit(name, fn)

    first = os.path.join(tmp, "ckpt-0001.snap")
    if os.path.exists(first):
        units = read_snapshot(first)[1]["units"]
    else:
        units = {}  # threshold beyond the whole run: resume from scratch
    resumed = RunCheckpointer(kind, [], preloaded_units=units,
                              stream=io.StringIO())
    result = {name: resumed.run_unit(name, fn)
              for name, fn in make_units(plan).items()}
    assert result == baseline


class TestCheckpointResumeProperty:
    @settings(max_examples=4, deadline=None)
    @given(every=st.integers(min_value=0, max_value=3_000_000),
           faulted=st.booleans())
    def test_fig5_resume_bit_identical(self, every, faulted):
        plan = FaultPlan(seed=5, link_loss=0.01) if faulted else None
        _checkpoint_resume_equals_uninterrupted("fig5", _fig5_units, plan, every)

    @settings(max_examples=4, deadline=None)
    @given(every=st.integers(min_value=0, max_value=3_000_000),
           faulted=st.booleans())
    def test_nas_ep_resume_bit_identical(self, every, faulted):
        plan = FaultPlan(seed=5, link_loss=0.01) if faulted else None
        _checkpoint_resume_equals_uninterrupted("nas", _nas_units, plan, every)


# ---------------------------------------------------------------------------
# hang watchdog
# ---------------------------------------------------------------------------

class TestHangWatchdog:
    def test_fires_on_frozen_kernel_with_post_mortem(self, tmp_path):
        cluster = Cluster(presets.opteron_infinihost_pcie(), 1)
        fired = []
        dog = HangWatchdog(0.25, snapshot_dir=str(tmp_path),
                           on_hang=fired.append, poll_s=0.05,
                           stream=io.StringIO())
        engine_core._active_kernel = cluster.kernel  # frozen: seq/now never move
        try:
            dog.start()
            deadline = time.monotonic() + 10.0
            while not dog.fired and time.monotonic() < deadline:
                time.sleep(0.02)
        finally:
            engine_core._active_kernel = None
            dog.stop()
        assert dog.fired
        assert fired and "repro hang post-mortem" in fired[0]
        assert dog.report_path and os.path.exists(dog.report_path)
        assert "kernel: now=0" in open(dog.report_path).read()
        assert dog.snapshot_paths
        manifest, payload = read_snapshot(dog.snapshot_paths[0])
        assert manifest["meta"]["kind"] == "post-mortem"
        assert payload["kind"] == "cluster"

    def test_host_side_work_is_not_a_hang(self):
        fired = []
        dog = HangWatchdog(0.15, on_hang=fired.append, poll_s=0.03,
                           stream=io.StringIO())
        with dog:  # no active kernel the whole time
            time.sleep(0.5)
        assert not dog.fired and not fired


class TestCounterSetRestore:
    """CounterSet keys must survive the checkpoint round trip even when
    the deserialiser hands back ``str`` subclasses: ``sys.intern``
    raises TypeError on those, so an un-normalised restore (or the
    first post-restore increment with a subclass key) crashed a resumed
    run that an uninterrupted run completed fine."""

    class StrSub(str):
        pass

    def test_add_accepts_str_subclass_keys(self):
        from repro.analysis.counters import CounterSet

        cs = CounterSet()
        cs.add(self.StrSub("tlb.4k.miss"))  # raised TypeError before
        cs.add("tlb.4k.miss", 2)
        assert cs["tlb.4k.miss"] == 3
        # the stored key is the interned plain str, not the subclass
        (key,) = [k for k, _ in cs]
        assert type(key) is str

    def test_add_many_accepts_str_subclass_keys(self):
        from repro.analysis.counters import CounterSet

        cs = CounterSet()
        cs.add_many([(self.StrSub("att.miss"), 5), ("att.miss", 1)])
        assert cs["att.miss"] == 6

    def test_restore_accepts_str_subclass_keys(self):
        from repro.analysis.counters import CounterSet

        cs = CounterSet()
        cs.restore({self.StrSub("hca.tx_bytes"): 42})
        assert cs["hca.tx_bytes"] == 42
        (key,) = [k for k, _ in cs]
        assert type(key) is str

    def test_restored_set_matches_uninterrupted_run(self):
        """Increments applied after a restore must land on the same
        entries an uninterrupted run produces — snapshots identical."""
        from repro.analysis.counters import CounterSet

        uninterrupted = CounterSet()
        for name, n in [("a.x", 1), ("b.y", 2), ("a.x", 3)]:
            uninterrupted.add(name, n)

        resumed = CounterSet()
        resumed.add("a.x", 1)
        snap = resumed.snapshot()
        # round-trip through a deserialiser that yields str subclasses
        resumed2 = CounterSet()
        resumed2.restore({self.StrSub(k): v for k, v in snap.items()})
        resumed2.add_many([(self.StrSub("b.y"), 2), ("a.x", 3)])

        assert resumed2.snapshot() == uninterrupted.snapshot()
