"""Smoke tests: every example script runs to completion.

Examples are part of the public API contract; this keeps them from
rotting as the library evolves.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # every example prints a real report


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 7
